#include "workload/swf.hpp"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/assert.hpp"
#include "common/str.hpp"

namespace dmsched {
namespace {

// SWF field indices (0-based) per the PWA v2.2 definition.
constexpr std::size_t kFieldSubmit = 1;
constexpr std::size_t kFieldRuntime = 3;
constexpr std::size_t kFieldAllocProcs = 4;
constexpr std::size_t kFieldUsedMemKb = 6;
constexpr std::size_t kFieldReqProcs = 7;
constexpr std::size_t kFieldReqTime = 8;
constexpr std::size_t kFieldReqMemKb = 9;
constexpr std::size_t kFieldStatus = 10;
constexpr std::size_t kFieldUser = 11;
constexpr std::size_t kFieldCount = 18;

}  // namespace

SwfParsedLine parse_swf_line(std::string_view line,
                             const SwfOptions& options) {
  DMSCHED_ASSERT(options.procs_per_node > 0, "SwfOptions: procs_per_node");
  SwfParsedLine out;
  const std::string_view stripped = trim(line);
  if (stripped.empty() || stripped.front() == ';') {
    out.kind = SwfLineKind::kBlank;
    return out;
  }

  const auto fields = split_ws(stripped);
  if (fields.size() < kFieldCount) {
    out.kind = SwfLineKind::kMalformed;
    return out;
  }
  std::int64_t raw[kFieldCount];
  for (std::size_t i = 0; i < kFieldCount; ++i) {
    double v{};  // archive traces occasionally use decimals (avg CPU time)
    if (!parse_double(fields[i], v)) {
      out.kind = SwfLineKind::kMalformed;
      return out;
    }
    raw[i] = static_cast<std::int64_t>(std::llround(v));
  }

  if (options.completed_only && raw[kFieldStatus] != 1 &&
      raw[kFieldStatus] != -1) {
    out.kind = SwfLineKind::kFiltered;
    return out;
  }
  const std::int64_t runtime_sec = raw[kFieldRuntime];
  std::int64_t procs = raw[kFieldReqProcs] > 0 ? raw[kFieldReqProcs]
                                               : raw[kFieldAllocProcs];
  if (runtime_sec <= 0 || procs <= 0 || raw[kFieldSubmit] < 0) {
    out.kind = SwfLineKind::kFiltered;
    return out;
  }

  Job j;
  j.submit = seconds(raw[kFieldSubmit]);
  j.nodes = static_cast<std::int32_t>(
      (procs + options.procs_per_node - 1) / options.procs_per_node);
  j.runtime = seconds(runtime_sec);
  if (raw[kFieldReqTime] > 0) {
    j.walltime = seconds(raw[kFieldReqTime]);
  } else {
    j.walltime = seconds(static_cast<double>(runtime_sec) *
                         options.walltime_fallback_factor);
  }
  // Archive traces contain overruns (runtime > request) when sites had lax
  // enforcement; DMSched requires runtime <= walltime, so clamp upward.
  j.walltime = max(j.walltime, j.runtime);

  const std::int64_t mem_kb = raw[kFieldReqMemKb] > 0 ? raw[kFieldReqMemKb]
                                                      : raw[kFieldUsedMemKb];
  if (mem_kb > 0) {
    j.mem_per_node =
        Bytes{mem_kb * 1024} * options.procs_per_node;
  } else {
    j.mem_per_node = options.default_mem_per_node;
  }
  j.user = raw[kFieldUser] > 0 ? static_cast<std::int32_t>(raw[kFieldUser])
                               : 0;
  j.sensitivity = MemSensitivity::kBalanced;
  out.kind = SwfLineKind::kJob;
  out.job = j;
  return out;
}

SwfResult read_swf(std::istream& in, const SwfOptions& options,
                   std::string trace_name) {
  DMSCHED_ASSERT(options.procs_per_node > 0, "SwfOptions: procs_per_node");
  SwfResult result;
  std::vector<Job> jobs;
  std::string line;
  while (std::getline(in, line)) {
    ++result.lines_total;
    const SwfParsedLine parsed = parse_swf_line(line, options);
    switch (parsed.kind) {
      case SwfLineKind::kBlank:
        break;
      case SwfLineKind::kMalformed:
        ++result.lines_malformed;
        break;
      case SwfLineKind::kFiltered:
        ++result.jobs_skipped;
        break;
      case SwfLineKind::kJob:
        jobs.push_back(parsed.job);
        ++result.jobs_accepted;
        break;
    }
  }
  if (in.bad()) {
    result.error = "I/O error while reading SWF stream";
    return result;
  }
  result.trace = Trace::make(std::move(jobs), std::move(trace_name)).rebased();
  return result;
}

SwfResult read_swf_file(const std::string& path, const SwfOptions& options) {
  std::ifstream in(path);
  if (!in) {
    SwfResult r;
    r.error = "cannot open SWF file: " + path;
    return r;
  }
  // Trace name = file basename.
  auto slash = path.find_last_of('/');
  std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  return read_swf(in, options, std::move(name));
}

void write_swf(std::ostream& out, const Trace& trace,
               const SwfOptions& options) {
  out << "; SWF export from DMSched\n";
  out << "; MaxProcs unknown; memory written as KB per processor\n";
  for (const Job& j : trace.jobs()) {
    const std::int64_t procs =
        static_cast<std::int64_t>(j.nodes) * options.procs_per_node;
    const std::int64_t mem_kb_per_proc =
        j.mem_per_node.count() / (1024 * options.procs_per_node);
    out << strformat(
        "%u %lld %lld %lld %lld -1 %lld %lld %lld %lld 1 %d -1 -1 -1 -1 -1 "
        "-1\n",
        j.id + 1, static_cast<long long>(j.submit.usec() / 1'000'000),
        -1LL,  // wait time: scheduling output, not part of the description
        static_cast<long long>(j.runtime.usec() / 1'000'000),
        static_cast<long long>(procs),
        static_cast<long long>(mem_kb_per_proc),
        static_cast<long long>(procs),
        static_cast<long long>(j.walltime.usec() / 1'000'000),
        static_cast<long long>(mem_kb_per_proc), j.user);
  }
}

}  // namespace dmsched
