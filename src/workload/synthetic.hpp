// Synthetic workload generation.
//
// Substitute for production traces (see DESIGN.md §Substitutions): a
// parametric model of arrivals, job shapes, runtimes, walltime estimates and
// per-node memory footprints. Parameters are chosen in workload/models.cpp
// to match the summary statistics of archetypal production centers.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "workload/trace.hpp"
#include "workload/trace_source.hpp"

namespace dmsched {

/// Full parametric description of a synthetic workload.
struct SyntheticSpec {
  std::string name = "synthetic";
  std::size_t job_count = 5000;

  // --- arrivals ---------------------------------------------------------
  /// Base Poisson arrival rate (jobs per hour).
  double arrival_rate_per_hour = 40.0;
  /// Diurnal modulation amplitude in [0,1): rate(t) follows a 24h sinusoid
  /// `base * (1 + A sin(2π t/24h))` — production arrival series are strongly
  /// diurnal, which matters for backfilling behaviour.
  double diurnal_amplitude = 0.35;

  // --- job width (nodes) -------------------------------------------------
  /// Nodes are drawn from weighted buckets, log-uniform within a bucket and
  /// snapped to a power of two with probability `pow2_bias` (users request
  /// powers of two far more often than anything else).
  struct NodeBucket {
    std::int32_t lo = 1;
    std::int32_t hi = 1;
    double weight = 1.0;
  };
  std::vector<NodeBucket> node_buckets{{1, 1, 0.25},
                                       {2, 16, 0.45},
                                       {17, 128, 0.25},
                                       {129, 512, 0.05}};
  double pow2_bias = 0.6;

  // --- runtime and walltime ----------------------------------------------
  /// Runtime ~ clipped lognormal (seconds).
  double runtime_log_mean = 8.2;  // e^8.2 ≈ 1h
  double runtime_log_sigma = 1.4;
  double runtime_min_sec = 60.0;
  double runtime_max_sec = 24.0 * 3600.0;
  /// Walltime = runtime · U(1, overestimate_max), except an
  /// `exact_fraction` of users who request runtime rounded up to 5 min.
  /// Mirrors the well-documented inaccuracy of user estimates.
  double walltime_overestimate_max = 5.0;
  double walltime_exact_fraction = 0.15;
  /// Requests are rounded up to this granularity (seconds).
  double walltime_rounding_sec = 900.0;

  // --- memory footprint ---------------------------------------------------
  /// Reference node-local memory capacity. Footprints are expressed as a
  /// fraction of this so the same spec scales with the machine config.
  Bytes reference_node_mem = gib(std::int64_t{256});
  /// Per-node footprint bands (fraction of reference), weighted. Fractions
  /// above 1.0 describe jobs that *cannot* run without disaggregated memory
  /// on a full-size node — the population the paper's system unlocks.
  struct MemBand {
    double lo_frac = 0.05;
    double hi_frac = 0.25;
    double weight = 1.0;
  };
  std::vector<MemBand> mem_bands{{0.02, 0.25, 0.55},
                                 {0.25, 0.75, 0.30},
                                 {0.75, 1.00, 0.12},
                                 {1.00, 1.50, 0.03}};

  // --- application behaviour ----------------------------------------------
  /// Sensitivity class weights: {compute-bound, balanced, bandwidth-bound}.
  std::array<double, 3> sensitivity_weights{0.35, 0.45, 0.20};

  /// Number of distinct users; jobs are assigned Zipf-like (a few heavy
  /// users dominate, as in every archive trace).
  std::int32_t user_count = 64;
};

/// Generate a trace from a spec. Deterministic in (spec, seed).
[[nodiscard]] Trace generate_trace(const SyntheticSpec& spec,
                                   std::uint64_t seed);

/// Generate and rescale arrivals so offered load against `machine_nodes`
/// equals `target_load` (e.g. 0.85 for a busy production system).
[[nodiscard]] Trace generate_trace_with_load(const SyntheticSpec& spec,
                                             std::uint64_t seed,
                                             std::int64_t machine_nodes,
                                             double target_load);

/// Pull-based equivalent of generate_trace_with_load: yields the identical
/// jobs one at a time at O(1) memory. A deterministic prepass replays the
/// same RNG streams to measure the offered load (so the arrival-scaling
/// factor matches the eager builder bit-for-bit), then a second pass yields
/// the jobs. Deterministic in all arguments; draining the source equals the
/// eager trace job-for-job (pinned by tests/workload/trace_source_test).
[[nodiscard]] std::unique_ptr<TraceSource> make_synthetic_source(
    const SyntheticSpec& spec, std::uint64_t seed, std::int64_t machine_nodes,
    double target_load);

}  // namespace dmsched
