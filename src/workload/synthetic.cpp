#include "workload/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/assert.hpp"

namespace dmsched {
namespace {

/// Next arrival gap for an inhomogeneous Poisson process via thinning.
SimTime next_arrival_gap(Rng& rng, const SyntheticSpec& spec,
                         SimTime current) {
  const double base_per_sec = spec.arrival_rate_per_hour / 3600.0;
  DMSCHED_ASSERT(base_per_sec > 0.0, "arrival rate must be positive");
  const double peak = base_per_sec * (1.0 + spec.diurnal_amplitude);
  double t = current.seconds();
  for (;;) {
    t += rng.exponential(peak);
    const double phase = 2.0 * std::numbers::pi * t / 86'400.0;
    const double rate =
        base_per_sec * (1.0 + spec.diurnal_amplitude * std::sin(phase));
    if (rng.uniform() * peak <= rate) {
      return seconds(t) - current;
    }
  }
}

std::int32_t sample_nodes(Rng& rng, const SyntheticSpec& spec) {
  std::vector<double> weights;
  weights.reserve(spec.node_buckets.size());
  for (const auto& b : spec.node_buckets) weights.push_back(b.weight);
  const auto& bucket = spec.node_buckets[rng.weighted_index(weights)];
  DMSCHED_ASSERT(bucket.lo >= 1 && bucket.hi >= bucket.lo,
                 "node bucket misconfigured");
  // Log-uniform across the bucket: small widths are much more common.
  const double lo = std::log(static_cast<double>(bucket.lo));
  const double hi = std::log(static_cast<double>(bucket.hi) + 1.0);
  auto n = static_cast<std::int32_t>(std::exp(rng.uniform(lo, hi)));
  n = std::clamp(n, bucket.lo, bucket.hi);
  if (n > 1 && rng.bernoulli(spec.pow2_bias)) {
    // Snap to the nearest power of two inside the bucket.
    const double lg = std::round(std::log2(static_cast<double>(n)));
    auto snapped = static_cast<std::int32_t>(std::exp2(lg));
    n = std::clamp(snapped, bucket.lo, bucket.hi);
  }
  return n;
}

SimTime sample_runtime(Rng& rng, const SyntheticSpec& spec) {
  const double r = std::clamp(
      rng.lognormal(spec.runtime_log_mean, spec.runtime_log_sigma),
      spec.runtime_min_sec, spec.runtime_max_sec);
  return seconds(r);
}

SimTime sample_walltime(Rng& rng, const SyntheticSpec& spec,
                        SimTime runtime) {
  double req;
  if (rng.bernoulli(spec.walltime_exact_fraction)) {
    req = runtime.seconds();
  } else {
    req = runtime.seconds() *
          rng.uniform(1.0, spec.walltime_overestimate_max);
  }
  // Users request in round numbers.
  const double rounded =
      std::ceil(req / spec.walltime_rounding_sec) * spec.walltime_rounding_sec;
  return max(seconds(rounded), runtime);
}

Bytes sample_mem_per_node(Rng& rng, const SyntheticSpec& spec) {
  std::vector<double> weights;
  weights.reserve(spec.mem_bands.size());
  for (const auto& b : spec.mem_bands) weights.push_back(b.weight);
  const auto& band = spec.mem_bands[rng.weighted_index(weights)];
  const double frac = rng.uniform(band.lo_frac, band.hi_frac);
  return gib(frac * spec.reference_node_mem.gib());
}

MemSensitivity sample_sensitivity(Rng& rng, const SyntheticSpec& spec) {
  const auto idx = rng.weighted_index(spec.sensitivity_weights);
  return static_cast<MemSensitivity>(idx);
}

std::int32_t sample_user(Rng& rng, const SyntheticSpec& spec) {
  // Zipf-like via inverse-power transform of a uniform draw.
  const double u = rng.uniform();
  const double z = std::pow(u, 2.0);  // skew toward low ids
  return static_cast<std::int32_t>(z * spec.user_count);
}

/// The generator's per-job stepper: the one sampling sequence both the
/// eager builder and the streaming source replay. Arrivals accumulate a
/// clock, so submits are nondecreasing by construction — Trace::make's
/// stable sort is the identity and ids equal generation order.
class JobStream {
 public:
  JobStream(const SyntheticSpec& spec, std::uint64_t seed)
      : spec_(spec),
        master_(seed),
        arrivals_(master_.fork(1)),
        shapes_(master_.fork(2)),
        memory_(master_.fork(3)),
        timing_(master_.fork(4)) {}

  Job next() {
    clock_ += next_arrival_gap(arrivals_, spec_, clock_);
    Job j;
    j.submit = clock_;
    j.nodes = sample_nodes(shapes_, spec_);
    j.runtime = sample_runtime(timing_, spec_);
    j.walltime = sample_walltime(timing_, spec_, j.runtime);
    j.mem_per_node = sample_mem_per_node(memory_, spec_);
    j.sensitivity = sample_sensitivity(memory_, spec_);
    j.user = sample_user(shapes_, spec_);
    return j;
  }

 private:
  SyntheticSpec spec_;
  Rng master_;
  Rng arrivals_;
  Rng shapes_;
  Rng memory_;
  Rng timing_;
  SimTime clock_{};
};

}  // namespace

Trace generate_trace(const SyntheticSpec& spec, std::uint64_t seed) {
  DMSCHED_ASSERT(spec.job_count > 0, "generate_trace: zero jobs");
  JobStream stream(spec, seed);
  std::vector<Job> jobs;
  jobs.reserve(spec.job_count);
  for (std::size_t i = 0; i < spec.job_count; ++i) {
    jobs.push_back(stream.next());
  }
  return Trace::make(std::move(jobs), spec.name);
}

Trace generate_trace_with_load(const SyntheticSpec& spec, std::uint64_t seed,
                               std::int64_t machine_nodes,
                               double target_load) {
  DMSCHED_ASSERT(target_load > 0.0, "target load must be positive");
  const Trace raw = generate_trace(spec, seed);
  const double load = raw.offered_load(machine_nodes);
  if (load <= 0.0) return raw;
  // offered_load scales inversely with the submission span.
  return raw.scaled_arrivals(load / target_load).rebased();
}

std::unique_ptr<TraceSource> make_synthetic_source(const SyntheticSpec& spec,
                                                   std::uint64_t seed,
                                                   std::int64_t machine_nodes,
                                                   double target_load) {
  DMSCHED_ASSERT(spec.job_count > 0, "make_synthetic_source: zero jobs");
  DMSCHED_ASSERT(target_load > 0.0, "target load must be positive");
  DMSCHED_ASSERT(machine_nodes > 0, "offered_load: machine has no nodes");

  // Pass 1: replay the generator to measure the offered load with the same
  // arithmetic Trace::offered_load applies to the materialized trace
  // (used_node_seconds summed in generation order; span = last − first).
  JobStream probe(spec, seed);
  SimTime first{};
  SimTime last{};
  double node_seconds = 0.0;
  for (std::size_t i = 0; i < spec.job_count; ++i) {
    const Job j = probe.next();
    if (i == 0) first = j.submit;
    last = j.submit;
    node_seconds += j.used_node_seconds();
  }
  const double span_sec =
      spec.job_count < 2 ? 0.0 : (last - first).seconds();
  const double load =
      span_sec <= 0.0
          ? 0.0
          : node_seconds / (static_cast<double>(machine_nodes) * span_sec);
  // Mirrors generate_trace_with_load: with no measurable load the raw
  // submits pass through unscaled (and unrebased), otherwise the final
  // submit is (s − s₀).scaled(load/target) — scaled_arrivals about the
  // epoch s₀ followed by rebased().
  const bool scale = load > 0.0;
  const double factor = scale ? load / target_load : 1.0;

  // Pass 2: the jobs themselves.
  auto stream = std::make_shared<JobStream>(spec, seed);
  auto generate = [stream, remaining = spec.job_count, epoch = first, scale,
                   factor]() mutable -> std::optional<Job> {
    if (remaining == 0) return std::nullopt;
    --remaining;
    Job j = stream->next();
    if (scale) j.submit = (j.submit - epoch).scaled(factor);
    return j;
  };
  return std::make_unique<GeneratorTraceSource>(spec.name, std::move(generate),
                                                spec.job_count);
}

}  // namespace dmsched
