#include "workload/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/assert.hpp"

namespace dmsched {
namespace {

/// Next arrival gap for an inhomogeneous Poisson process via thinning.
SimTime next_arrival_gap(Rng& rng, const SyntheticSpec& spec,
                         SimTime current) {
  const double base_per_sec = spec.arrival_rate_per_hour / 3600.0;
  DMSCHED_ASSERT(base_per_sec > 0.0, "arrival rate must be positive");
  const double peak = base_per_sec * (1.0 + spec.diurnal_amplitude);
  double t = current.seconds();
  for (;;) {
    t += rng.exponential(peak);
    const double phase = 2.0 * std::numbers::pi * t / 86'400.0;
    const double rate =
        base_per_sec * (1.0 + spec.diurnal_amplitude * std::sin(phase));
    if (rng.uniform() * peak <= rate) {
      return seconds(t) - current;
    }
  }
}

std::int32_t sample_nodes(Rng& rng, const SyntheticSpec& spec) {
  std::vector<double> weights;
  weights.reserve(spec.node_buckets.size());
  for (const auto& b : spec.node_buckets) weights.push_back(b.weight);
  const auto& bucket = spec.node_buckets[rng.weighted_index(weights)];
  DMSCHED_ASSERT(bucket.lo >= 1 && bucket.hi >= bucket.lo,
                 "node bucket misconfigured");
  // Log-uniform across the bucket: small widths are much more common.
  const double lo = std::log(static_cast<double>(bucket.lo));
  const double hi = std::log(static_cast<double>(bucket.hi) + 1.0);
  auto n = static_cast<std::int32_t>(std::exp(rng.uniform(lo, hi)));
  n = std::clamp(n, bucket.lo, bucket.hi);
  if (n > 1 && rng.bernoulli(spec.pow2_bias)) {
    // Snap to the nearest power of two inside the bucket.
    const double lg = std::round(std::log2(static_cast<double>(n)));
    auto snapped = static_cast<std::int32_t>(std::exp2(lg));
    n = std::clamp(snapped, bucket.lo, bucket.hi);
  }
  return n;
}

SimTime sample_runtime(Rng& rng, const SyntheticSpec& spec) {
  const double r = std::clamp(
      rng.lognormal(spec.runtime_log_mean, spec.runtime_log_sigma),
      spec.runtime_min_sec, spec.runtime_max_sec);
  return seconds(r);
}

SimTime sample_walltime(Rng& rng, const SyntheticSpec& spec,
                        SimTime runtime) {
  double req;
  if (rng.bernoulli(spec.walltime_exact_fraction)) {
    req = runtime.seconds();
  } else {
    req = runtime.seconds() *
          rng.uniform(1.0, spec.walltime_overestimate_max);
  }
  // Users request in round numbers.
  const double rounded =
      std::ceil(req / spec.walltime_rounding_sec) * spec.walltime_rounding_sec;
  return max(seconds(rounded), runtime);
}

Bytes sample_mem_per_node(Rng& rng, const SyntheticSpec& spec) {
  std::vector<double> weights;
  weights.reserve(spec.mem_bands.size());
  for (const auto& b : spec.mem_bands) weights.push_back(b.weight);
  const auto& band = spec.mem_bands[rng.weighted_index(weights)];
  const double frac = rng.uniform(band.lo_frac, band.hi_frac);
  return gib(frac * spec.reference_node_mem.gib());
}

MemSensitivity sample_sensitivity(Rng& rng, const SyntheticSpec& spec) {
  const auto idx = rng.weighted_index(spec.sensitivity_weights);
  return static_cast<MemSensitivity>(idx);
}

std::int32_t sample_user(Rng& rng, const SyntheticSpec& spec) {
  // Zipf-like via inverse-power transform of a uniform draw.
  const double u = rng.uniform();
  const double z = std::pow(u, 2.0);  // skew toward low ids
  return static_cast<std::int32_t>(z * spec.user_count);
}

}  // namespace

Trace generate_trace(const SyntheticSpec& spec, std::uint64_t seed) {
  DMSCHED_ASSERT(spec.job_count > 0, "generate_trace: zero jobs");
  Rng master(seed);
  Rng arrivals = master.fork(1);
  Rng shapes = master.fork(2);
  Rng memory = master.fork(3);
  Rng timing = master.fork(4);

  std::vector<Job> jobs;
  jobs.reserve(spec.job_count);
  SimTime clock{};
  for (std::size_t i = 0; i < spec.job_count; ++i) {
    clock += next_arrival_gap(arrivals, spec, clock);
    Job j;
    j.submit = clock;
    j.nodes = sample_nodes(shapes, spec);
    j.runtime = sample_runtime(timing, spec);
    j.walltime = sample_walltime(timing, spec, j.runtime);
    j.mem_per_node = sample_mem_per_node(memory, spec);
    j.sensitivity = sample_sensitivity(memory, spec);
    j.user = sample_user(shapes, spec);
    jobs.push_back(j);
  }
  return Trace::make(std::move(jobs), spec.name);
}

Trace generate_trace_with_load(const SyntheticSpec& spec, std::uint64_t seed,
                               std::int64_t machine_nodes,
                               double target_load) {
  DMSCHED_ASSERT(target_load > 0.0, "target load must be positive");
  const Trace raw = generate_trace(spec, seed);
  const double load = raw.offered_load(machine_nodes);
  if (load <= 0.0) return raw;
  // offered_load scales inversely with the submission span.
  return raw.scaled_arrivals(load / target_load).rebased();
}

}  // namespace dmsched
