// A workload trace: jobs ordered by submission time, plus transformations.
#pragma once

#include <string>
#include <vector>

#include "workload/job.hpp"

namespace dmsched {

/// An ordered collection of jobs (nondecreasing submit times, ids equal to
/// their index). Construct via `make` so both invariants are enforced.
class Trace {
 public:
  Trace() = default;

  /// Sorts by submit time (stable) and reassigns ids to match indices.
  static Trace make(std::vector<Job> jobs, std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return jobs_.size(); }
  [[nodiscard]] bool empty() const { return jobs_.empty(); }
  [[nodiscard]] const Job& job(JobId id) const;
  [[nodiscard]] const std::vector<Job>& jobs() const { return jobs_; }

  /// Submission span: last submit − first submit (0 for <2 jobs).
  [[nodiscard]] SimTime span() const;

  /// A copy with submit times shifted so the first job submits at t=0.
  [[nodiscard]] Trace rebased() const;

  /// A copy containing only the first `n` jobs (by submission order).
  [[nodiscard]] Trace prefix(std::size_t n) const;

  /// A copy with all inter-arrival gaps scaled by `factor` (<1 compresses,
  /// i.e. raises load). Runtimes are untouched.
  [[nodiscard]] Trace scaled_arrivals(double factor) const;

  /// Offered load against a machine of `total_nodes`:
  /// Σ(nodes·runtime) / (total_nodes · span). >1 means oversubscribed.
  [[nodiscard]] double offered_load(std::int64_t total_nodes) const;

 private:
  std::vector<Job> jobs_;
  std::string name_;
};

}  // namespace dmsched
