#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace dmsched::sim {

bool EventQueue::before(const Entry& a, const Entry& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.cls != b.cls) return a.cls < b.cls;
  return a.seq < b.seq;
}

void EventQueue::sift_up(std::size_t i) {
  Entry e = std::move(heap_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(e, heap_[parent])) break;
    heap_[i] = std::move(heap_[parent]);
    pos_[heap_[i].id - base_] = static_cast<std::uint32_t>(i);
    i = parent;
  }
  heap_[i] = std::move(e);
  pos_[heap_[i].id - base_] = static_cast<std::uint32_t>(i);
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  Entry e = std::move(heap_[i]);
  for (;;) {
    const std::size_t first = kArity * i + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + kArity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    heap_[i] = std::move(heap_[best]);
    pos_[heap_[i].id - base_] = static_cast<std::uint32_t>(i);
    i = best;
  }
  heap_[i] = std::move(e);
  pos_[heap_[i].id - base_] = static_cast<std::uint32_t>(i);
}

void EventQueue::clear_slot(EventId id) {
  pos_[id - base_] = kNotPending;
  // Advance past the dead prefix. Each slot is visited at most once after
  // it dies, so the scan is amortized O(1) per event.
  while (dead_prefix_ < pos_.size() && pos_[dead_prefix_] == kNotPending) {
    ++dead_prefix_;
  }
  // Physically drop the dead prefix once it dominates the vector, keeping
  // memory proportional to the live id window (amortized O(1): each
  // compaction moves at most as many slots as died since the last one).
  if (dead_prefix_ > 64 && dead_prefix_ > pos_.size() / 2) {
    pos_.erase(pos_.begin(),
               pos_.begin() + static_cast<std::ptrdiff_t>(dead_prefix_));
    base_ += dead_prefix_;
    dead_prefix_ = 0;
  }
}

void EventQueue::remove_at(std::size_t i) {
  clear_slot(heap_[i].id);
  const std::size_t last = heap_.size() - 1;
  if (i == last) {
    heap_.pop_back();
    return;
  }
  heap_[i] = std::move(heap_[last]);
  heap_.pop_back();
  // The filled-in entry came from a leaf; it may belong above or below i.
  if (i > 0 && before(heap_[i], heap_[(i - 1) / kArity])) {
    sift_up(i);
  } else {
    sift_down(i);
  }
}

EventId EventQueue::push(SimTime time, EventClass cls, EventFn fn) {
  DMSCHED_ASSERT(heap_.size() < kNotPending, "EventQueue: heap full");
  const EventId id = next_id_++;
  pos_.push_back(kNotPending);  // slot id - base_; set by sift_up below
  peak_id_window_ = std::max(peak_id_window_, pos_.size());
  heap_.push_back({time, cls, next_seq_++, id, std::move(fn)});
  sift_up(heap_.size() - 1);
  return id;
}

bool EventQueue::cancel(EventId id) {
  DMSCHED_ASSERT(id != kInvalidEventId, "cancel(): invalid event id");
  // The position slot answers "pending?" in O(1): an id below the window
  // base or at/above next_id_ was fired/cancelled long ago or never issued,
  // and a dead slot inside the window is fired or already cancelled. Ids
  // are never reused, so every false is permanent.
  if (id < base_ || id - base_ >= pos_.size()) return false;
  const std::uint32_t p = pos_[id - base_];
  if (p == kNotPending) return false;
  remove_at(p);
  return true;
}

SimTime EventQueue::next_time() const {
  return heap_.empty() ? kTimeInfinity : heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  DMSCHED_ASSERT(!empty(), "EventQueue::pop on empty queue");
  Entry e = std::move(heap_.front());
  remove_at(0);
  return {e.id, e.time, e.cls, std::move(e.fn)};
}

}  // namespace dmsched::sim
