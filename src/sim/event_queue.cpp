#include "sim/event_queue.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dmsched::sim {

bool EventQueue::later(const Entry& a, const Entry& b) {
  if (a.time != b.time) return a.time > b.time;
  if (a.cls != b.cls) return a.cls > b.cls;
  return a.seq > b.seq;
}

EventId EventQueue::push(SimTime time, EventClass cls, EventFn fn) {
  const EventId id = next_id_++;
  heap_.push_back({time, cls, next_seq_++, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), later);
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  DMSCHED_ASSERT(id != kInvalidEventId, "cancel(): invalid event id");
  if (id >= next_id_) return false;
  // An id not in the heap anymore has already fired; an id in cancelled_
  // was already cancelled. We cannot distinguish "fired" cheaply, so probe
  // the tombstone set first and trust callers (engine) to hold live ids.
  if (cancelled_.contains(id)) return false;
  const bool pending =
      std::any_of(heap_.begin(), heap_.end(),
                  [&](const Entry& e) { return e.id == id; });
  if (!pending) return false;
  cancelled_.insert(id);
  --live_;
  return true;
}

void EventQueue::drop_cancelled_front() {
  while (!heap_.empty() && cancelled_.contains(heap_.front().id)) {
    cancelled_.erase(heap_.front().id);
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
  }
}

bool EventQueue::empty() const { return live_ == 0; }

SimTime EventQueue::next_time() const {
  // const_cast-free: scan is not possible without mutation, so replicate
  // drop logic lazily in pop() and tolerate tombstones here by scanning.
  if (live_ == 0) return kTimeInfinity;
  const Entry* best = nullptr;
  if (!cancelled_.contains(heap_.front().id)) {
    return heap_.front().time;
  }
  for (const auto& e : heap_) {
    if (cancelled_.contains(e.id)) continue;
    if (best == nullptr || later(*best, e)) best = &e;
  }
  DMSCHED_ASSERT(best != nullptr, "EventQueue: live count out of sync");
  return best->time;
}

EventQueue::Fired EventQueue::pop() {
  DMSCHED_ASSERT(!empty(), "EventQueue::pop on empty queue");
  drop_cancelled_front();
  DMSCHED_ASSERT(!heap_.empty(), "EventQueue: live count out of sync");
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  --live_;
  return {e.id, e.time, e.cls, std::move(e.fn)};
}

}  // namespace dmsched::sim
