#include "sim/engine.hpp"

#include "common/assert.hpp"

namespace dmsched::sim {

EventId Engine::schedule_at(SimTime at, EventClass cls, EventFn fn) {
  DMSCHED_ASSERT(at >= now_, "schedule_at(): time travel into the past");
  return queue_.push(at, cls, std::move(fn));
}

EventId Engine::schedule_in(SimTime delay, EventClass cls, EventFn fn) {
  DMSCHED_ASSERT(delay >= SimTime{0}, "schedule_in(): negative delay");
  return queue_.push(now_ + delay, cls, std::move(fn));
}

bool Engine::cancel(EventId id) { return queue_.cancel(id); }

bool Engine::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  DMSCHED_ASSERT(fired.time >= now_, "event queue returned past event");
  now_ = fired.time;
  ++processed_;
  fired.fn(now_);
  return true;
}

std::size_t Engine::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Engine::run_until(SimTime until) {
  DMSCHED_ASSERT(until >= now_, "run_until(): horizon in the past");
  std::size_t n = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    step();
    ++n;
  }
  now_ = until;
  return n;
}

}  // namespace dmsched::sim
