// Pending-event set: a binary heap with a stable total order and lazy
// cancellation.
#pragma once

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "sim/event.hpp"

namespace dmsched::sim {

/// Min-heap of events ordered by (time, class, sequence number).
///
/// The sequence number makes the order total and insertion-stable, which is
/// what makes whole simulations bit-reproducible. Cancellation is lazy: a
/// cancelled id is skipped at pop time (cancellations are rare — only
/// walltime kills use them — so tombstones stay cheap).
class EventQueue {
 public:
  /// Insert an event; returns its id (never kInvalidEventId).
  EventId push(SimTime time, EventClass cls, EventFn fn);

  /// Cancel a pending event. Returns false if it already fired or was
  /// already cancelled.
  bool cancel(EventId id);

  /// True when no live events remain.
  [[nodiscard]] bool empty() const;

  /// Time of the earliest live event; kTimeInfinity when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Pop the earliest live event. Requires !empty().
  struct Fired {
    EventId id;
    SimTime time;
    EventClass cls;
    EventFn fn;
  };
  Fired pop();

  /// Number of live (non-cancelled) events.
  [[nodiscard]] std::size_t size() const { return live_; }

 private:
  struct Entry {
    SimTime time;
    EventClass cls;
    std::uint64_t seq;
    EventId id;
    EventFn fn;
  };
  /// Heap ordering: *later* entries compare true so std::push_heap builds a
  /// min-heap on (time, class, seq).
  static bool later(const Entry& a, const Entry& b);

  void drop_cancelled_front();

  std::vector<Entry> heap_;
  std::unordered_set<EventId> cancelled_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace dmsched::sim
