// Pending-event set: an indexed d-ary min-heap with a stable total order
// and O(log n) cancellation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/event.hpp"

namespace dmsched::sim {

/// Min-heap of events ordered by (time, class, sequence number).
///
/// The sequence number makes the order total and insertion-stable, which is
/// what makes whole simulations bit-reproducible. The heap is *indexed*: a
/// handle → heap-position map keeps every pending id addressable, so
/// `cancel` removes its entry in O(log n) (no tombstones, no scans) and
/// `next_time()` is the root in O(1). The arity is an internal layout
/// choice — the comparator's total order fully determines pop order, so
/// observable behaviour is identical at any d (see src/README.md,
/// "Determinism is a contract").
class EventQueue {
 public:
  /// Insert an event; returns its id (never kInvalidEventId).
  EventId push(SimTime time, EventClass cls, EventFn fn);

  /// Cancel a pending event. Returns false if it already fired or was
  /// already cancelled (ids are never reused, so a stale id stays false
  /// forever).
  bool cancel(EventId id);

  /// True when no live events remain.
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  /// Time of the earliest live event; kTimeInfinity when empty. O(1).
  [[nodiscard]] SimTime next_time() const;

  /// Pop the earliest live event. Requires !empty().
  struct Fired {
    EventId id;
    SimTime time;
    EventClass cls;
    EventFn fn;
  };
  Fired pop();

  /// Number of live (non-cancelled) events.
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Width of the live id window [base_, base_ + id_window()): the dense
  /// index's memory tracks this span between the oldest still-tracked and
  /// the newest issued id — not the total events ever pushed.
  [[nodiscard]] std::size_t id_window() const { return pos_.size(); }

  /// Largest id window ever observed. This is the O(memory) figure bounded
  /// submission look-ahead shrinks from O(trace) to O(window); the
  /// streaming-ingestion bench reports and enforces it.
  [[nodiscard]] std::size_t peak_id_window() const { return peak_id_window_; }

 private:
  /// Heap arity. 4 keeps the tree shallow (fewer cache lines per sift)
  /// while the min-of-children scan stays one cache line of entries.
  static constexpr std::size_t kArity = 4;

  struct Entry {
    SimTime time;
    EventClass cls;
    std::uint64_t seq;
    EventId id;
    EventFn fn;
  };
  /// The total order: earlier entries compare true.
  static bool before(const Entry& a, const Entry& b);

  /// Move heap_[i] toward the root/leaves until the heap property holds,
  /// maintaining pos_ for every entry moved.
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  /// Remove the entry at heap position i (fills the hole with the last
  /// entry and re-sifts). Clears the id's position slot.
  void remove_at(std::size_t i);

  /// Mark `id` no longer pending and advance/compact the dead prefix.
  void clear_slot(EventId id);

  std::vector<Entry> heap_;
  /// The index: heap position per id, or kNotPending once fired/cancelled.
  /// Ids are issued sequentially, so instead of a hash map this is a dense
  /// vector over the live id window [base_, base_ + pos_.size()): lookups
  /// are one subtract + one load, with no hashing on the push/pop hot path.
  /// base_ advances past the all-dead prefix (amortized O(1) — each slot is
  /// scanned once after it dies, and physical compaction halves the vector),
  /// so memory tracks the window between the oldest and newest pending id,
  /// not the total events ever pushed.
  static constexpr std::uint32_t kNotPending = UINT32_MAX;
  std::vector<std::uint32_t> pos_;
  EventId base_ = 1;
  std::size_t dead_prefix_ = 0;
  std::size_t peak_id_window_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
};

}  // namespace dmsched::sim
