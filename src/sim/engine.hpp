// The discrete-event simulation engine.
#pragma once

#include <cstddef>

#include "sim/event_queue.hpp"

namespace dmsched::sim {

/// Single-threaded DES engine: a clock plus an event loop.
///
/// Determinism contract: with identical schedule() calls, run() fires events
/// in an identical order (see EventQueue). Handlers may schedule/cancel
/// events freely, including at the current timestamp (same-time events fire
/// in EventClass-then-insertion order).
class Engine {
 public:
  /// Current simulation time (time of the event being processed, or the
  /// last processed event after run() returns).
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (must be >= now()).
  EventId schedule_at(SimTime at, EventClass cls, EventFn fn);

  /// Schedule `fn` after `delay` (must be >= 0).
  EventId schedule_in(SimTime delay, EventClass cls, EventFn fn);

  /// Cancel a pending event; false if it already fired/was cancelled.
  bool cancel(EventId id);

  /// Process events until the queue drains. Returns events processed.
  std::size_t run();

  /// Process events with time <= `until` (inclusive). Advances now() to
  /// `until` even if the queue drains earlier. Returns events processed.
  std::size_t run_until(SimTime until);

  /// Process exactly one event if any is pending; returns whether one fired.
  bool step();

  /// Total events processed over the engine's lifetime.
  [[nodiscard]] std::size_t events_processed() const { return processed_; }

  /// Live events still pending.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Pending-set id-window instrumentation (see EventQueue).
  [[nodiscard]] std::size_t id_window() const { return queue_.id_window(); }
  [[nodiscard]] std::size_t peak_id_window() const {
    return queue_.peak_id_window();
  }

 private:
  EventQueue queue_;
  SimTime now_{};
  std::size_t processed_ = 0;
};

}  // namespace dmsched::sim
