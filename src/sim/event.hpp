// Event record types for the discrete-event engine.
#pragma once

#include <cstdint>
#include <functional>

#include "common/time.hpp"

namespace dmsched::sim {

/// Identifies a scheduled event; used for cancellation.
using EventId = std::uint64_t;
constexpr EventId kInvalidEventId = 0;

/// Tie-break class for events that share a timestamp. Lower runs first.
///
/// The order encodes batch-scheduler semantics: releases happen before
/// arrivals so a completion at time T frees resources for a job submitted at
/// T; scheduling passes run after all state changes at T are applied.
enum class EventClass : std::int8_t {
  kCompletion = 0,  ///< job finished / killed — releases resources
  kSubmission = 1,  ///< job arrives in the queue
  kTimer = 2,       ///< metric sampling, periodic hooks
  kMigration = 3,   ///< data movement between memory tiers (retier + re-price)
  kSchedule = 4,    ///< scheduling pass
};

/// Callback invoked when the event fires; receives the firing time.
using EventFn = std::function<void(SimTime)>;

}  // namespace dmsched::sim
