#include "migration/migration.hpp"

#include <map>
#include <utility>

#include "common/assert.hpp"

namespace dmsched {

SimTime MigrationPolicy::latency_for(Bytes bytes) const {
  if (bandwidth_gibps <= 0.0) return SimTime{};
  return seconds(bytes.gib() / bandwidth_gibps);
}

const char* to_string(MigrationKind k) {
  switch (k) {
    case MigrationKind::kDemote: return "demote";
    case MigrationKind::kPromote: return "promote";
  }
  return "?";
}

std::vector<MigrationDecision> MigrationEngine::plan(
    const Cluster& cluster, const std::vector<JobId>& running) const {
  std::vector<MigrationDecision> out;
  if (!policy_.enabled()) return out;
  const ClusterConfig& config = cluster.config();
  // No rack tier: every far byte is already global, nothing to grade.
  if (config.pool_per_rack.is_zero() || config.global_pool.is_zero()) {
    return out;
  }

  // Working copies so successive decisions within one scan see each other's
  // effect — otherwise every job on one contended pool demotes at once and
  // overshoots the target band.
  const auto racks = static_cast<std::size_t>(config.racks());
  std::vector<Bytes> pool_used(racks);
  for (RackId r = 0; r < config.racks(); ++r) {
    pool_used[static_cast<std::size_t>(r)] = cluster.pool_used(r);
  }
  Bytes global_free = cluster.global_pool_free();
  const double cap = static_cast<double>(config.pool_per_rack.count());
  const auto used_frac = [&](RackId r) {
    return static_cast<double>(
               pool_used[static_cast<std::size_t>(r)].count()) /
           cap;
  };

  std::unordered_set<JobId> decided;

  // Demotions first: relieve contended pools before pulling anything back.
  for (const JobId id : running) {
    if (in_flight(id)) continue;
    const Allocation* alloc = cluster.find_allocation(id);
    if (alloc == nullptr) continue;
    for (const auto& d : alloc->draws) {
      if (d.rack == kGlobalPoolRack) continue;
      if (used_frac(d.rack) <= policy_.demote_threshold) continue;
      if (global_free < d.bytes) continue;
      out.push_back({id, MigrationKind::kDemote, d.rack, d.neighbor, d.bytes});
      pool_used[static_cast<std::size_t>(d.rack)] -= d.bytes;
      global_free -= d.bytes;
      decided.insert(id);
      break;  // at most one move per job per scan
    }
  }

  // Promotions: pull a job's global bytes back into a hosting rack whose
  // pool sits below the hysteresis band, clamped so the landing never
  // lifts that pool back above the band (no demote/promote flapping).
  const double band = policy_.demote_threshold - policy_.promote_headroom;
  if (band <= 0.0) return out;
  for (const JobId id : running) {
    if (in_flight(id) || decided.contains(id)) continue;
    const Allocation* alloc = cluster.find_allocation(id);
    if (alloc == nullptr) continue;
    const Bytes global_bytes = alloc->global_draw_total();
    if (global_bytes.is_zero()) continue;
    // Hosting racks in ascending order (nodes are grouped by materialize,
    // but dedupe defensively).
    RackId prev = kGlobalPoolRack;
    for (const NodeId n : alloc->nodes) {
      const RackId r = config.rack_of(n);
      if (r == prev) continue;
      prev = r;
      if (used_frac(r) >= band) continue;
      const auto ceiling =
          Bytes{static_cast<std::int64_t>(cap * band)};
      const Bytes room =
          ceiling - min(ceiling, pool_used[static_cast<std::size_t>(r)]);
      const Bytes move = min(global_bytes, room);
      if (move.is_zero()) continue;
      out.push_back({id, MigrationKind::kPromote, r, false, move});
      pool_used[static_cast<std::size_t>(r)] += move;
      global_free += move;
      break;
    }
  }
  return out;
}

std::vector<PoolDraw> rewrite_draws(const Allocation& alloc,
                                    const MigrationDecision& decision) {
  // Coalesce the current draws by (rack, neighbor-flag).
  std::map<std::pair<RackId, bool>, Bytes> rack_draws;
  Bytes global{};
  for (const auto& d : alloc.draws) {
    if (d.rack == kGlobalPoolRack) {
      global += d.bytes;
    } else {
      rack_draws[{d.rack, d.neighbor}] += d.bytes;
    }
  }
  switch (decision.kind) {
    case MigrationKind::kDemote: {
      auto it = rack_draws.find({decision.rack, decision.neighbor});
      DMSCHED_ASSERT(it != rack_draws.end() && it->second >= decision.bytes,
                     "rewrite_draws: demotion exceeds the source draw");
      it->second -= decision.bytes;
      if (it->second.is_zero()) rack_draws.erase(it);
      global += decision.bytes;
      break;
    }
    case MigrationKind::kPromote: {
      DMSCHED_ASSERT(global >= decision.bytes,
                     "rewrite_draws: promotion exceeds the global draw");
      global -= decision.bytes;
      rack_draws[{decision.rack, decision.neighbor}] += decision.bytes;
      break;
    }
  }
  // Canonical order: own-rack draws by rack, neighbor draws by rack, the
  // global draw last — deterministic regardless of the input draw order.
  std::vector<PoolDraw> out;
  out.reserve(rack_draws.size() + 1);
  for (const bool neighbor_pass : {false, true}) {
    for (const auto& [key, bytes] : rack_draws) {
      if (key.second == neighbor_pass && !bytes.is_zero()) {
        out.push_back({key.first, bytes, key.second});
      }
    }
  }
  if (!global.is_zero()) out.push_back({kGlobalPoolRack, global});
  return out;
}

}  // namespace dmsched
