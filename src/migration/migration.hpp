// Live migration of pooled bytes between memory tiers.
//
// DOLMA-style object migration (PAPERS.md): tiering decisions react to
// contention instead of being fixed at allocation time. A periodic check
// scans the running jobs and proposes *demotions* (rack-tier bytes of a
// contended pool move to the global tier) and *promotions* (global-tier
// bytes move back into a hosting rack's pool once it has headroom). The
// engine applies each move through `Cluster::retier` and re-prices the
// job's slowdown.
//
// Layering: migration/ sits between topology/ and memory/. It may include
// common/, cluster/, and topology/ — but NOT memory/: pricing the move
// (the dilation change) is the core engine's job via memory/slowdown.
//
// Every knob is behind a 0-sentinel: a default-constructed MigrationPolicy
// schedules no events and touches nothing, so published machines stay
// byte-identical with migration off.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace dmsched {

/// Policy knobs for the migration engine. Defaults are the no-op sentinel.
struct MigrationPolicy {
  /// How often the engine scans running jobs for moves. Zero (the default)
  /// disables migration entirely — no events are ever scheduled.
  SimTime check_interval{};
  /// A rack pool whose used fraction exceeds this is *contended*: far bytes
  /// it serves become demotion candidates (rack → global).
  double demote_threshold = 0.85;
  /// Hysteresis band: promotion (global → rack) requires the target pool's
  /// used fraction to sit below `demote_threshold - promote_headroom`, so a
  /// pool hovering at the threshold never flaps demote/promote.
  double promote_headroom = 0.25;
  /// Migration bandwidth in GiB/s. Zero (the default) means moves apply
  /// instantaneously at the check event; positive values delay the apply by
  /// bytes/bandwidth, modelling the copy.
  double bandwidth_gibps = 0.0;

  [[nodiscard]] bool enabled() const { return check_interval > SimTime{}; }
  /// Copy latency for `bytes` under the bandwidth knob (zero if unlimited).
  [[nodiscard]] SimTime latency_for(Bytes bytes) const;
};

enum class MigrationKind : std::uint8_t {
  kDemote,   ///< rack-tier bytes → global tier (pool contended)
  kPromote,  ///< global-tier bytes → a hosting rack's pool (headroom back)
};

[[nodiscard]] const char* to_string(MigrationKind k);

/// One proposed move of a running job's far bytes between tiers.
struct MigrationDecision {
  JobId job = kInvalidJobId;
  MigrationKind kind = MigrationKind::kDemote;
  /// The rack-tier end of the move: source pool for a demotion, target pool
  /// for a promotion.
  RackId rack = 0;
  /// Whether that rack-tier end is a neighbor draw (rack hosts none of the
  /// job's nodes) — must match the draw being moved / created.
  bool neighbor = false;
  Bytes bytes{};
};

/// The scanner: proposes moves from the cluster ledger. Stateless except
/// for in-flight tracking (a job with a bandwidth-delayed move pending is
/// skipped until the move lands, so moves never interleave per job).
class MigrationEngine {
 public:
  MigrationEngine() = default;
  explicit MigrationEngine(MigrationPolicy policy) : policy_(policy) {}

  [[nodiscard]] const MigrationPolicy& policy() const { return policy_; }

  /// Scan `running` (caller supplies a deterministic order — the engine's
  /// intrusive running list) and propose at most one move per job. Demotions
  /// are proposed before promotions for the same scan so a contended pool
  /// is relieved before anything is pulled back in.
  [[nodiscard]] std::vector<MigrationDecision> plan(
      const Cluster& cluster, const std::vector<JobId>& running) const;

  /// Mark a job's move as dispatched / landed / abandoned.
  void on_dispatch(JobId id) { in_flight_.insert(id); }
  void on_applied(JobId id) { in_flight_.erase(id); }
  void on_job_finished(JobId id) { in_flight_.erase(id); }
  [[nodiscard]] bool in_flight(JobId id) const {
    return in_flight_.contains(id);
  }

 private:
  MigrationPolicy policy_;
  std::unordered_set<JobId> in_flight_;
};

/// The draw rewrite a decision implies, in canonical order (hosting-rack
/// draws by rack, neighbor draws by rack, the global draw last). The result
/// covers exactly the same far total — ready for `Cluster::retier`.
[[nodiscard]] std::vector<PoolDraw> rewrite_draws(
    const Allocation& alloc, const MigrationDecision& decision);

}  // namespace dmsched
