// Static description of the simulated machine.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace dmsched {

/// Node index within the cluster (0 .. total_nodes-1, rack-major).
using NodeId = std::int32_t;
/// Rack index (0 .. racks-1).
using RackId = std::int32_t;
/// Sentinel rack id meaning "the cluster-global pool".
constexpr RackId kGlobalPoolRack = -1;

/// Machine shape: homogeneous nodes in equal racks, an optional
/// disaggregated memory pool per rack, and an optional global pool.
struct ClusterConfig {
  std::string name = "cluster";
  std::int32_t total_nodes = 1024;
  std::int32_t nodes_per_rack = 64;
  /// Local (direct-attached) memory per node.
  Bytes local_mem_per_node = gib(std::int64_t{256});
  /// Disaggregated pool capacity per rack (0 = no rack pools).
  Bytes pool_per_rack{};
  /// Cluster-global pool capacity (0 = none). Models a far memory tier
  /// reachable from every rack at higher cost.
  Bytes global_pool{};
  /// Accelerators provisioned per node (0 = no GPUs). GPUs are rack-pooled
  /// (multi-instance / fabric-attached): rack `r` owns
  /// `gpus_per_node * rack_size(r)` devices shared among its nodes, so a job
  /// whose per-node GPU demand exceeds the provisioned ratio contends with
  /// its rack neighbours instead of being flatly infeasible.
  std::int32_t gpus_per_node = 0;
  /// Cluster-global burst-buffer capacity (0 = none). Jobs reserve staging
  /// space for their whole runtime.
  Bytes bb_capacity{};

  [[nodiscard]] std::int32_t racks() const {
    return (total_nodes + nodes_per_rack - 1) / nodes_per_rack;
  }
  [[nodiscard]] RackId rack_of(NodeId node) const {
    return node / nodes_per_rack;
  }
  /// Nodes in rack `r` (the last rack may be partial).
  [[nodiscard]] std::int32_t rack_size(RackId r) const {
    const std::int32_t first = r * nodes_per_rack;
    const std::int32_t remaining = total_nodes - first;
    return remaining < nodes_per_rack ? remaining : nodes_per_rack;
  }
  /// Total disaggregated capacity (all rack pools + global pool).
  [[nodiscard]] Bytes total_pool() const {
    return pool_per_rack * racks() + global_pool;
  }
  /// Total memory (local + pools) — capacity comparisons across configs.
  [[nodiscard]] Bytes total_memory() const {
    return local_mem_per_node * total_nodes + total_pool();
  }
  /// GPU devices owned by rack `r` (the last rack may be partial).
  [[nodiscard]] std::int64_t rack_gpu_capacity(RackId r) const {
    return static_cast<std::int64_t>(gpus_per_node) * rack_size(r);
  }
  /// GPU devices across the whole machine.
  [[nodiscard]] std::int64_t total_gpus() const {
    return static_cast<std::int64_t>(gpus_per_node) * total_nodes;
  }
  /// True when the machine provisions any GPUs.
  [[nodiscard]] bool has_gpus() const { return gpus_per_node > 0; }
  /// True when the machine provisions a burst buffer.
  [[nodiscard]] bool has_burst_buffer() const { return !bb_capacity.is_zero(); }
  /// Abort if the shape is degenerate.
  void validate() const;
};

}  // namespace dmsched
