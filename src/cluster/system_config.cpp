#include "cluster/system_config.hpp"

#include "common/str.hpp"

namespace dmsched {

ClusterConfig reference_config() {
  ClusterConfig c;
  c.name = "ref-L256";
  c.total_nodes = 1024;
  c.nodes_per_rack = 64;
  c.local_mem_per_node = gib(std::int64_t{256});
  c.pool_per_rack = Bytes{0};
  c.global_pool = Bytes{0};
  return c;
}

ClusterConfig disaggregated_config(std::int64_t local_gib,
                                   std::int64_t rack_pool_gib,
                                   std::int64_t global_pool_gib) {
  ClusterConfig c = reference_config();
  c.local_mem_per_node = gib(local_gib);
  c.pool_per_rack = gib(rack_pool_gib);
  c.global_pool = gib(global_pool_gib);
  c.name = strformat("dis-L%lld-P%lld", static_cast<long long>(local_gib),
                     static_cast<long long>(rack_pool_gib));
  if (global_pool_gib > 0) {
    c.name += strformat("-G%lld", static_cast<long long>(global_pool_gib));
  }
  return c;
}

ClusterConfig custom_config(std::int32_t total_nodes,
                            std::int32_t nodes_per_rack, Bytes local_per_node,
                            Bytes pool_per_rack, Bytes global_pool) {
  ClusterConfig c;
  c.total_nodes = total_nodes;
  c.nodes_per_rack = nodes_per_rack;
  c.local_mem_per_node = local_per_node;
  c.pool_per_rack = pool_per_rack;
  c.global_pool = global_pool;
  c.name = strformat("custom-N%d-R%d", total_nodes, nodes_per_rack);
  return c;
}

std::vector<ClusterConfig> evaluation_configs() {
  // Reference, then local-memory reductions with a 2 TiB rack pool, then
  // pool-size variants at the headline 128 GiB local point.
  return {
      reference_config(),
      disaggregated_config(192, 2048),
      disaggregated_config(128, 2048),
      disaggregated_config(96, 2048),
      disaggregated_config(64, 2048),
      disaggregated_config(128, 1024),
      disaggregated_config(128, 4096),
      disaggregated_config(128, 0, 32768),  // one global pool, same bytes
  };
}

}  // namespace dmsched
