#include "cluster/cluster.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace dmsched {

void ClusterConfig::validate() const {
  DMSCHED_ASSERT(total_nodes > 0, "ClusterConfig: no nodes");
  DMSCHED_ASSERT(nodes_per_rack > 0, "ClusterConfig: empty racks");
  DMSCHED_ASSERT(local_mem_per_node > Bytes{0},
                 "ClusterConfig: nodes need local memory");
  DMSCHED_ASSERT(pool_per_rack >= Bytes{0} && global_pool >= Bytes{0},
                 "ClusterConfig: negative pool");
  DMSCHED_ASSERT(gpus_per_node >= 0, "ClusterConfig: negative GPU count");
  DMSCHED_ASSERT(bb_capacity >= Bytes{0},
                 "ClusterConfig: negative burst-buffer capacity");
}

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  config_.validate();
  node_occupant_.assign(static_cast<std::size_t>(config_.total_nodes),
                        kInvalidJobId);
  rack_free_.resize(static_cast<std::size_t>(config_.racks()));
  for (RackId r = 0; r < config_.racks(); ++r) {
    rack_free_[static_cast<std::size_t>(r)] = config_.rack_size(r);
  }
  pool_used_.assign(static_cast<std::size_t>(config_.racks()), Bytes{0});
  neighbor_used_.assign(static_cast<std::size_t>(config_.racks()), Bytes{0});
  gpu_used_.assign(static_cast<std::size_t>(config_.racks()), 0);
  free_total_ = config_.total_nodes;
}

std::int32_t Cluster::free_nodes_in_rack(RackId r) const {
  DMSCHED_ASSERT(r >= 0 && r < config_.racks(), "rack id out of range");
  return rack_free_[static_cast<std::size_t>(r)];
}

Bytes Cluster::pool_free(RackId r) const {
  DMSCHED_ASSERT(r >= 0 && r < config_.racks(), "rack id out of range");
  return config_.pool_per_rack - pool_used_[static_cast<std::size_t>(r)];
}

Bytes Cluster::global_pool_free() const {
  return config_.global_pool - global_used_;
}

JobId Cluster::occupant(NodeId node) const {
  DMSCHED_ASSERT(node >= 0 && node < config_.total_nodes,
                 "node id out of range");
  return node_occupant_[static_cast<std::size_t>(node)];
}

Bytes Cluster::rack_pools_used() const {
  Bytes total{};
  for (const Bytes& b : pool_used_) total += b;
  return total;
}

Bytes Cluster::pool_used(RackId r) const {
  DMSCHED_ASSERT(r >= 0 && r < config_.racks(), "rack id out of range");
  return pool_used_[static_cast<std::size_t>(r)];
}

std::int64_t Cluster::free_gpus_in_rack(RackId r) const {
  DMSCHED_ASSERT(r >= 0 && r < config_.racks(), "rack id out of range");
  return config_.rack_gpu_capacity(r) - gpu_used_[static_cast<std::size_t>(r)];
}

std::int64_t Cluster::gpus_used_in_rack(RackId r) const {
  DMSCHED_ASSERT(r >= 0 && r < config_.racks(), "rack id out of range");
  return gpu_used_[static_cast<std::size_t>(r)];
}

std::int64_t Cluster::gpus_used_total() const {
  std::int64_t total = 0;
  for (const std::int64_t g : gpu_used_) total += g;
  return total;
}

Bytes Cluster::neighbor_bytes_in_rack(RackId r) const {
  DMSCHED_ASSERT(r >= 0 && r < config_.racks(), "rack id out of range");
  return neighbor_used_[static_cast<std::size_t>(r)];
}

Bytes Cluster::neighbor_bytes_total() const {
  Bytes total{};
  for (const Bytes& b : neighbor_used_) total += b;
  return total;
}

Bytes Cluster::busiest_rack_pool_used() const {
  Bytes peak{};
  for (const Bytes& b : pool_used_) peak = max(peak, b);
  return peak;
}

std::vector<NodeId> Cluster::free_nodes_in_rack_lowest(
    RackId r, std::int32_t count) const {
  DMSCHED_ASSERT(r >= 0 && r < config_.racks(), "rack id out of range");
  std::vector<NodeId> out;
  if (count <= 0) return out;
  const NodeId first = r * config_.nodes_per_rack;
  const NodeId last = first + config_.rack_size(r);
  for (NodeId n = first; n < last && std::cmp_less(out.size(), count); ++n) {
    if (node_occupant_[static_cast<std::size_t>(n)] == kInvalidJobId) {
      out.push_back(n);
    }
  }
  return out;
}

void Cluster::commit(const Allocation& alloc) {
  DMSCHED_ASSERT(alloc.job != kInvalidJobId, "commit: invalid job id");
  DMSCHED_ASSERT(!allocations_.contains(alloc.job),
                 "commit: job already holds an allocation");
  DMSCHED_ASSERT(!alloc.nodes.empty(), "commit: allocation without nodes");
  DMSCHED_ASSERT(alloc.local_per_node <= config_.local_mem_per_node,
                 "commit: local share exceeds node capacity");
  DMSCHED_ASSERT(alloc.local_per_node >= Bytes{0} &&
                     alloc.far_per_node >= Bytes{0},
                 "commit: negative memory share");

  // Draws must sum exactly to the far requirement.
  Bytes draw_sum{};
  for (const auto& d : alloc.draws) {
    DMSCHED_ASSERT(d.bytes > Bytes{0}, "commit: empty pool draw");
    draw_sum += d.bytes;
  }
  DMSCHED_ASSERT(draw_sum == alloc.far_total(),
                 "commit: pool draws do not cover the far requirement");

  // Nodes must be distinct and free.
  for (NodeId n : alloc.nodes) {
    DMSCHED_ASSERT(n >= 0 && n < config_.total_nodes,
                   "commit: node id out of range");
    DMSCHED_ASSERT(node_occupant_[static_cast<std::size_t>(n)] ==
                       kInvalidJobId,
                   "commit: node already occupied");
  }

  // Rack draws must target racks hosting at least one of the job's nodes —
  // unless they are neighbor-marked, the validated distance-graded path:
  // then the rack must host *none* (the marking and hosting set must agree
  // exactly, so an unmarked foreign draw still aborts as before).
  for (const auto& d : alloc.draws) {
    if (d.rack == kGlobalPoolRack) {
      DMSCHED_ASSERT(!d.neighbor, "commit: global draw marked as neighbor");
      DMSCHED_ASSERT(d.bytes <= global_pool_free(),
                     "commit: global pool overcommitted");
      continue;
    }
    DMSCHED_ASSERT(d.bytes <= pool_free(d.rack),
                   "commit: rack pool overcommitted");
    const bool hosts_node =
        std::any_of(alloc.nodes.begin(), alloc.nodes.end(), [&](NodeId n) {
          return config_.rack_of(n) == d.rack;
        });
    if (d.neighbor) {
      DMSCHED_ASSERT(!hosts_node,
                     "commit: neighbor-marked draw from a hosting rack");
    } else {
      DMSCHED_ASSERT(hosts_node, "commit: draw from a rack hosting no node");
    }
  }

  // GPU demand lands on the hosting racks' device pools; burst-buffer
  // reservations on the cluster-global staging capacity.
  DMSCHED_ASSERT(alloc.gpus_per_node >= 0, "commit: negative GPU request");
  DMSCHED_ASSERT(alloc.bb_bytes >= Bytes{0},
                 "commit: negative burst-buffer reservation");
  if (alloc.gpus_per_node > 0) {
    std::vector<std::int64_t> demand(
        static_cast<std::size_t>(config_.racks()), 0);
    for (NodeId n : alloc.nodes) {
      demand[static_cast<std::size_t>(config_.rack_of(n))] +=
          alloc.gpus_per_node;
    }
    for (RackId r = 0; r < config_.racks(); ++r) {
      DMSCHED_ASSERT(demand[static_cast<std::size_t>(r)] <=
                         free_gpus_in_rack(r),
                     "commit: rack GPU pool overcommitted");
    }
  }
  DMSCHED_ASSERT(alloc.bb_bytes <= bb_free(),
                 "commit: burst buffer overcommitted");

  // All checks passed: apply.
  for (NodeId n : alloc.nodes) {
    node_occupant_[static_cast<std::size_t>(n)] = alloc.job;
    --rack_free_[static_cast<std::size_t>(config_.rack_of(n))];
    --free_total_;
  }
  for (const auto& d : alloc.draws) {
    if (d.rack == kGlobalPoolRack) {
      global_used_ += d.bytes;
    } else {
      pool_used_[static_cast<std::size_t>(d.rack)] += d.bytes;
      if (d.neighbor) {
        neighbor_used_[static_cast<std::size_t>(d.rack)] += d.bytes;
      }
    }
  }
  if (alloc.gpus_per_node > 0) {
    for (NodeId n : alloc.nodes) {
      gpu_used_[static_cast<std::size_t>(config_.rack_of(n))] +=
          alloc.gpus_per_node;
    }
  }
  bb_used_ += alloc.bb_bytes;
  allocations_.emplace(alloc.job, alloc);
}

Allocation Cluster::release(JobId job) {
  auto it = allocations_.find(job);
  DMSCHED_ASSERT(it != allocations_.end(), "release: job not running");
  Allocation alloc = std::move(it->second);
  allocations_.erase(it);
  for (NodeId n : alloc.nodes) {
    DMSCHED_ASSERT(node_occupant_[static_cast<std::size_t>(n)] == job,
                   "release: occupancy ledger corrupt");
    node_occupant_[static_cast<std::size_t>(n)] = kInvalidJobId;
    ++rack_free_[static_cast<std::size_t>(config_.rack_of(n))];
    ++free_total_;
  }
  for (const auto& d : alloc.draws) {
    if (d.rack == kGlobalPoolRack) {
      global_used_ -= d.bytes;
    } else {
      pool_used_[static_cast<std::size_t>(d.rack)] -= d.bytes;
      if (d.neighbor) {
        auto& held = neighbor_used_[static_cast<std::size_t>(d.rack)];
        held -= d.bytes;
        DMSCHED_ASSERT(held >= Bytes{0}, "release: neighbor ledger corrupt");
      }
    }
  }
  if (alloc.gpus_per_node > 0) {
    for (NodeId n : alloc.nodes) {
      auto& held = gpu_used_[static_cast<std::size_t>(config_.rack_of(n))];
      held -= alloc.gpus_per_node;
      DMSCHED_ASSERT(held >= 0, "release: GPU ledger corrupt");
    }
  }
  bb_used_ -= alloc.bb_bytes;
  return alloc;
}

void Cluster::retier(JobId job, std::vector<PoolDraw> new_draws) {
  auto it = allocations_.find(job);
  DMSCHED_ASSERT(it != allocations_.end(), "retier: job not running");
  Allocation& alloc = it->second;

  // Migration moves bytes between tiers; the far total is invariant.
  Bytes new_sum{};
  for (const auto& d : new_draws) {
    DMSCHED_ASSERT(d.bytes > Bytes{0}, "retier: empty pool draw");
    new_sum += d.bytes;
  }
  DMSCHED_ASSERT(new_sum == alloc.far_total(),
                 "retier: new draws do not cover the far requirement");

  // Validate against capacity *with the job's old draws returned* — a
  // migration that shuffles bytes within the same pool must not trip on
  // its own holdings.
  std::vector<Bytes> pool_after(pool_used_);
  Bytes global_after = global_used_;
  for (const auto& d : alloc.draws) {
    if (d.rack == kGlobalPoolRack) {
      global_after -= d.bytes;
    } else {
      pool_after[static_cast<std::size_t>(d.rack)] -= d.bytes;
    }
  }
  for (const auto& d : new_draws) {
    if (d.rack == kGlobalPoolRack) {
      DMSCHED_ASSERT(!d.neighbor, "retier: global draw marked as neighbor");
      global_after += d.bytes;
      continue;
    }
    DMSCHED_ASSERT(d.rack >= 0 && d.rack < config_.racks(),
                   "retier: rack id out of range");
    auto& used = pool_after[static_cast<std::size_t>(d.rack)];
    used += d.bytes;
    DMSCHED_ASSERT(used <= config_.pool_per_rack,
                   "retier: rack pool overcommitted");
    const bool hosts_node =
        std::any_of(alloc.nodes.begin(), alloc.nodes.end(), [&](NodeId n) {
          return config_.rack_of(n) == d.rack;
        });
    if (d.neighbor) {
      DMSCHED_ASSERT(!hosts_node,
                     "retier: neighbor-marked draw from a hosting rack");
    } else {
      DMSCHED_ASSERT(hosts_node, "retier: draw from a rack hosting no node");
    }
  }
  DMSCHED_ASSERT(global_after <= config_.global_pool,
                 "retier: global pool overcommitted");

  // Apply: retire the old draws from the ledgers, land the new ones.
  for (const auto& d : alloc.draws) {
    if (d.rack == kGlobalPoolRack) continue;
    if (d.neighbor) {
      auto& held = neighbor_used_[static_cast<std::size_t>(d.rack)];
      held -= d.bytes;
      DMSCHED_ASSERT(held >= Bytes{0}, "retier: neighbor ledger corrupt");
    }
  }
  pool_used_ = std::move(pool_after);
  global_used_ = global_after;
  for (const auto& d : new_draws) {
    if (d.rack != kGlobalPoolRack && d.neighbor) {
      neighbor_used_[static_cast<std::size_t>(d.rack)] += d.bytes;
    }
  }
  alloc.draws = std::move(new_draws);
}

const Allocation* Cluster::find_allocation(JobId job) const {
  auto it = allocations_.find(job);
  return it == allocations_.end() ? nullptr : &it->second;
}

std::vector<JobId> Cluster::running_jobs() const {
  std::vector<JobId> out;
  out.reserve(allocations_.size());
  for (const auto& [id, _] : allocations_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

void Cluster::audit() const {
  std::vector<std::int32_t> rack_free(rack_free_.size(), 0);
  std::int32_t free_total = 0;
  for (NodeId n = 0; n < config_.total_nodes; ++n) {
    const JobId occ = node_occupant_[static_cast<std::size_t>(n)];
    if (occ == kInvalidJobId) {
      ++rack_free[static_cast<std::size_t>(config_.rack_of(n))];
      ++free_total;
    } else {
      DMSCHED_ASSERT(allocations_.contains(occ),
                     "audit: node held by unknown job");
    }
  }
  DMSCHED_ASSERT(free_total == free_total_, "audit: free-node count drift");
  DMSCHED_ASSERT(rack_free == rack_free_, "audit: rack free-count drift");

  std::vector<Bytes> pool_used(pool_used_.size(), Bytes{0});
  std::vector<Bytes> neighbor_used(neighbor_used_.size(), Bytes{0});
  std::vector<std::int64_t> gpu_used(gpu_used_.size(), 0);
  Bytes global_used{};
  Bytes bb_used{};
  for (const auto& [job, alloc] : allocations_) {
    DMSCHED_ASSERT(job == alloc.job, "audit: allocation key mismatch");
    for (NodeId n : alloc.nodes) {
      DMSCHED_ASSERT(node_occupant_[static_cast<std::size_t>(n)] == job,
                     "audit: allocation lists a node it does not hold");
      gpu_used[static_cast<std::size_t>(config_.rack_of(n))] +=
          alloc.gpus_per_node;
    }
    for (const auto& d : alloc.draws) {
      if (d.rack == kGlobalPoolRack) {
        global_used += d.bytes;
      } else {
        pool_used[static_cast<std::size_t>(d.rack)] += d.bytes;
        const bool hosts_node = std::any_of(
            alloc.nodes.begin(), alloc.nodes.end(),
            [&](NodeId n) { return config_.rack_of(n) == d.rack; });
        DMSCHED_ASSERT(d.neighbor != hosts_node,
                       "audit: neighbor marking disagrees with hosting set");
        if (d.neighbor) {
          neighbor_used[static_cast<std::size_t>(d.rack)] += d.bytes;
        }
      }
    }
    bb_used += alloc.bb_bytes;
  }
  DMSCHED_ASSERT(global_used == global_used_, "audit: global pool drift");
  for (std::size_t r = 0; r < pool_used.size(); ++r) {
    DMSCHED_ASSERT(pool_used[r] == pool_used_[r], "audit: rack pool drift");
    DMSCHED_ASSERT(neighbor_used[r] == neighbor_used_[r],
                   "audit: neighbor ledger drift");
    DMSCHED_ASSERT(pool_used[r] <= config_.pool_per_rack,
                   "audit: rack pool overcommitted");
  }
  DMSCHED_ASSERT(global_used_ <= config_.global_pool,
                 "audit: global pool overcommitted");
  DMSCHED_ASSERT(gpu_used == gpu_used_, "audit: GPU ledger drift");
  for (RackId r = 0; r < config_.racks(); ++r) {
    DMSCHED_ASSERT(gpu_used_[static_cast<std::size_t>(r)] <=
                       config_.rack_gpu_capacity(r),
                   "audit: rack GPU pool overcommitted");
  }
  DMSCHED_ASSERT(bb_used == bb_used_, "audit: burst-buffer drift");
  DMSCHED_ASSERT(bb_used_ <= config_.bb_capacity,
                 "audit: burst buffer overcommitted");
}

}  // namespace dmsched
