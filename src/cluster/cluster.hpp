// The live machine: node occupancy and pool ledgers.
//
// Cluster is purely mechanical — it validates and applies allocations and
// answers capacity queries. *Choosing* an allocation is the placement
// layer's job (src/memory/placement.hpp); *when* to start a job is the
// scheduler's job. This split lets every scheduler share one audited ledger.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/allocation.hpp"
#include "cluster/config.hpp"

namespace dmsched {

/// Mutable machine state with conservation invariants enforced on every
/// transition (see DESIGN.md §4).
class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  [[nodiscard]] const ClusterConfig& config() const { return config_; }

  // --- capacity queries ---------------------------------------------------
  [[nodiscard]] std::int32_t free_nodes_total() const { return free_total_; }
  [[nodiscard]] std::int32_t free_nodes_in_rack(RackId r) const;
  /// Remaining capacity of rack `r`'s pool.
  [[nodiscard]] Bytes pool_free(RackId r) const;
  /// Remaining capacity of the global pool.
  [[nodiscard]] Bytes global_pool_free() const;
  /// Job occupying `node`, or kInvalidJobId when free.
  [[nodiscard]] JobId occupant(NodeId node) const;
  /// Busy-node count (total - free).
  [[nodiscard]] std::int32_t busy_nodes() const {
    return config_.total_nodes - free_total_;
  }
  /// Total bytes currently drawn across all rack pools.
  [[nodiscard]] Bytes rack_pools_used() const;
  /// Bytes currently drawn from rack `r`'s pool.
  [[nodiscard]] Bytes pool_used(RackId r) const;
  /// Bytes drawn in the single busiest rack pool right now — the
  /// rack-imbalance signal topology studies report.
  [[nodiscard]] Bytes busiest_rack_pool_used() const;
  /// Bytes currently drawn from the global pool.
  [[nodiscard]] Bytes global_pool_used() const { return global_used_; }
  /// Bytes of rack `r`'s pool currently serving *foreign* jobs (neighbor
  /// draws: jobs hosting no node in `r`). A subset of pool_used(r).
  [[nodiscard]] Bytes neighbor_bytes_in_rack(RackId r) const;
  /// Σ neighbor-marked bytes across all rack pools.
  [[nodiscard]] Bytes neighbor_bytes_total() const;
  /// Free GPU devices in rack `r`'s pool (0 on GPU-less machines).
  [[nodiscard]] std::int64_t free_gpus_in_rack(RackId r) const;
  /// GPU devices currently held in rack `r`.
  [[nodiscard]] std::int64_t gpus_used_in_rack(RackId r) const;
  /// GPU devices currently held across the machine.
  [[nodiscard]] std::int64_t gpus_used_total() const;
  /// Remaining burst-buffer capacity.
  [[nodiscard]] Bytes bb_free() const { return config_.bb_capacity - bb_used_; }
  /// Burst-buffer bytes currently reserved.
  [[nodiscard]] Bytes bb_used() const { return bb_used_; }

  /// The `count` lowest-numbered free nodes in rack `r` (deterministic
  /// placement); fewer are returned if the rack has fewer free.
  [[nodiscard]] std::vector<NodeId> free_nodes_in_rack_lowest(
      RackId r, std::int32_t count) const;

  // --- transitions ----------------------------------------------------------
  /// Apply an allocation. Aborts on any invariant violation (a scheduler
  /// bug, not a runtime condition — plans must be validated before commit).
  void commit(const Allocation& alloc);

  /// Release a job's allocation and return it. Aborts if not running.
  Allocation release(JobId job);

  /// Rewrite a running job's pool draws in place — the migration engine's
  /// transition. The new draw set must cover exactly the same far total as
  /// the old one (migration moves bytes, it never changes the footprint),
  /// fit the target pools' remaining capacity (with the job's old draws
  /// released), and satisfy the same neighbor-marking consistency commit
  /// enforces. Node occupancy, GPUs, and the burst buffer are untouched.
  void retier(JobId job, std::vector<PoolDraw> new_draws);

  /// Allocation of a running job, if any.
  [[nodiscard]] const Allocation* find_allocation(JobId job) const;

  /// Jobs currently holding resources.
  [[nodiscard]] std::vector<JobId> running_jobs() const;

  /// Recompute all ledgers from the occupancy map and assert they match the
  /// incremental ones. O(nodes + allocations); used by tests and available
  /// behind a flag in long experiments.
  void audit() const;

 private:
  ClusterConfig config_;
  std::vector<JobId> node_occupant_;       // per node
  std::vector<std::int32_t> rack_free_;    // per rack
  std::vector<Bytes> pool_used_;           // per rack
  std::vector<Bytes> neighbor_used_;       // per rack: foreign-job subset
  std::vector<std::int64_t> gpu_used_;     // per rack
  Bytes global_used_{};
  Bytes bb_used_{};
  std::int32_t free_total_ = 0;
  std::unordered_map<JobId, Allocation> allocations_;
};

}  // namespace dmsched
