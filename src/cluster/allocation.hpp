// What a running job holds: nodes plus memory drawn from pools.
#pragma once

#include <vector>

#include "cluster/config.hpp"
#include "common/units.hpp"
#include "workload/job.hpp"

namespace dmsched {

/// Bytes drawn from one pool (a rack pool, or the global pool when
/// `rack == kGlobalPoolRack`).
struct PoolDraw {
  RackId rack = kGlobalPoolRack;
  Bytes bytes{};
  /// True when `rack` hosts none of the job's nodes — a distance-graded
  /// *neighbor* draw (MemoryTier::kNeighborPool). Only the shared-neighbors
  /// routing produces these; Cluster::commit still aborts on an unmarked
  /// foreign draw, so legacy strict mode is unchanged.
  bool neighbor = false;
};

/// A concrete resource grant for one job.
///
/// Invariants (checked by Cluster::commit):
///  - `nodes` are distinct and free;
///  - `local_per_node <= cluster local capacity`;
///  - Σ draws == far_per_node · |nodes|;
///  - each rack draw's rack hosts at least one allocated node, *unless* the
///    draw is neighbor-marked — then the rack must host none (the marking
///    and the hosting set must agree exactly).
struct Allocation {
  JobId job = kInvalidJobId;
  std::vector<NodeId> nodes;
  /// Bytes of the job's per-node footprint served by node-local memory.
  Bytes local_per_node{};
  /// Bytes per node served from disaggregated pools (the deficit).
  Bytes far_per_node{};
  /// Where the far bytes come from.
  std::vector<PoolDraw> draws;
  /// GPU devices held per allocated node (drawn from the hosting racks'
  /// pools; always equals the job's request — GPUs have no far tier).
  std::int32_t gpus_per_node = 0;
  /// Job-global burst-buffer reservation.
  Bytes bb_bytes{};

  /// Total far bytes across the job.
  [[nodiscard]] Bytes far_total() const {
    return far_per_node * static_cast<std::int64_t>(nodes.size());
  }
  /// Total footprint across the job.
  [[nodiscard]] Bytes mem_total() const {
    return (local_per_node + far_per_node) *
           static_cast<std::int64_t>(nodes.size());
  }
  /// Fraction of the footprint served from pools, in [0,1].
  [[nodiscard]] double far_fraction() const {
    return ratio(far_total(), mem_total());
  }
  /// Far bytes drawn from the job's *own* racks' pools (hosting racks).
  [[nodiscard]] Bytes rack_draw_total() const {
    Bytes total{};
    for (const auto& d : draws) {
      if (d.rack != kGlobalPoolRack && !d.neighbor) total += d.bytes;
    }
    return total;
  }
  /// Far bytes drawn from foreign racks' pools (neighbor-marked draws).
  [[nodiscard]] Bytes neighbor_draw_total() const {
    Bytes total{};
    for (const auto& d : draws) {
      if (d.neighbor) total += d.bytes;
    }
    return total;
  }
  /// Total GPU devices held across the job.
  [[nodiscard]] std::int64_t gpu_total() const {
    return static_cast<std::int64_t>(gpus_per_node) *
           static_cast<std::int64_t>(nodes.size());
  }
  /// GPU devices held in rack `r` (its nodes there x per-node count).
  [[nodiscard]] std::int64_t gpus_in_rack(const ClusterConfig& config,
                                          RackId r) const {
    std::int64_t hosted = 0;
    for (const NodeId n : nodes) {
      if (config.rack_of(n) == r) ++hosted;
    }
    return hosted * gpus_per_node;
  }
  /// Far bytes drawn from the global pool.
  [[nodiscard]] Bytes global_draw_total() const {
    Bytes total{};
    for (const auto& d : draws) {
      if (d.rack == kGlobalPoolRack) total += d.bytes;
    }
    return total;
  }
};

}  // namespace dmsched
