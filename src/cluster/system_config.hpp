// Named machine configurations used across the evaluation (Table II).
#pragma once

#include <vector>

#include "cluster/config.hpp"

namespace dmsched {

/// The reference machine: 1024 nodes, 16 racks × 64, 256 GiB local memory
/// per node, no disaggregation. All comparisons are against this.
[[nodiscard]] ClusterConfig reference_config();

/// A disaggregated variant: local memory shrunk to `local_gib` per node and
/// a rack pool of `rack_pool_gib` added per rack (plus optional global
/// pool). Name encodes the shape, e.g. "dis-L128-P2048".
[[nodiscard]] ClusterConfig disaggregated_config(std::int64_t local_gib,
                                                 std::int64_t rack_pool_gib,
                                                 std::int64_t global_pool_gib = 0);

/// Fully custom machine.
[[nodiscard]] ClusterConfig custom_config(std::int32_t total_nodes,
                                          std::int32_t nodes_per_rack,
                                          Bytes local_per_node,
                                          Bytes pool_per_rack,
                                          Bytes global_pool);

/// The configuration matrix of Table II: reference plus the disaggregated
/// variants every experiment draws from.
[[nodiscard]] std::vector<ClusterConfig> evaluation_configs();

}  // namespace dmsched
