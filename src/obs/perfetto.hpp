// Chrome/Perfetto trace-event JSON emitter.
//
// Writes the classic trace-event format ({"traceEvents":[...]}) that both
// chrome://tracing and https://ui.perfetto.dev load directly. Layout:
//
//   pid 1  "sim: jobs"       one thread track per rack (run spans) plus a
//                            "queued" track; job spans are *async* events
//                            ("b"/"e", id = job id) because many jobs
//                            overlap on one rack track — stack-nested
//                            "B"/"E" cannot represent that.
//   pid 2  "sim: scheduler"  one "X" event per pass (dur 0 — passes are
//                            instantaneous in simulated time) and "C"
//                            counter series for the gauges.
//   pid 3  "wall: executor"  cumulative per-worker profile (wall-clock
//                            domain; see add_worker_profiles).
//
// Timestamps are microseconds: simulated time maps 1:1 (SimTime is already
// int64 µs since the trace epoch). The writer streams — nothing is
// buffered beyond one flush block — so tracing a large replay is O(1)
// memory. close() (or destruction) writes the JSON trailer; a trace is not
// loadable until then.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "obs/trace_sink.hpp"

namespace dmsched::obs {

/// Cumulative wall-clock stats for one executor worker, as copied from
/// runtime::Executor::worker_stats() (obs/ cannot include runtime/; the
/// caller converts).
struct WorkerProfile {
  std::uint64_t tasks_run = 0;
  std::uint64_t tasks_stolen = 0;
  std::uint64_t wait_ns = 0;
};

class PerfettoTraceWriter final : public TraceSink {
 public:
  /// Opens `path`; check ok() before trusting the run.
  explicit PerfettoTraceWriter(const std::string& path);
  ~PerfettoTraceWriter() override;

  PerfettoTraceWriter(const PerfettoTraceWriter&) = delete;
  PerfettoTraceWriter& operator=(const PerfettoTraceWriter&) = delete;

  [[nodiscard]] bool ok() const { return !failed_ && out_.good(); }
  [[nodiscard]] std::size_t events_written() const { return events_; }

  /// Append the executor's cumulative per-worker profile as a wall-clock
  /// track (pid 3): per worker, one span whose length is its total idle
  /// wait, with tasks_run/tasks_stolen in the args. Call between the end
  /// of the run and close().
  void add_worker_profiles(const std::vector<WorkerProfile>& workers,
                           std::uint64_t inline_runs);

  /// Write the JSON trailer and flush. Idempotent; the destructor calls it.
  void close();

  void on_run_begin(const RunInfo& info) override;
  void on_job_queued(const JobQueued& e) override;
  void on_job_rejected(const JobRejected& e) override;
  void on_job_started(const JobStarted& e) override;
  void on_job_migrated(const JobMigrated& e) override;
  void on_job_finished(const JobFinished& e) override;
  void on_pass(const PassSpan& e) override;
  void on_gauges(const GaugeSample& e) override;
  void on_run_end(SimTime makespan) override;

  /// JSON-escape `s` (quotes, backslashes, control bytes -> \u00XX).
  /// Exposed for tests.
  [[nodiscard]] static std::string escape(std::string_view s);

 private:
  // Track ids. Queued spans live on a dedicated tid past the last rack.
  static constexpr int kJobsPid = 1;
  static constexpr int kSchedPid = 2;
  static constexpr int kExecPid = 3;

  void raw(std::string_view text);
  void event_prelude();  // comma/newline separation between events
  void metadata(int pid, int tid, const char* what, std::string_view name);
  void flush_if_full();

  std::ofstream out_;
  std::string buf_;
  std::size_t events_ = 0;
  std::int32_t queue_tid_ = 0;  // racks (set at on_run_begin)
  bool closed_ = false;
  bool failed_ = false;
};

}  // namespace dmsched::obs
