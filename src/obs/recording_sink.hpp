// A TraceSink that records every callback verbatim.
//
// Used by the passivity golden tests (attach one, prove RunMetrics are
// byte-identical to the no-sink run) and by the tracing-overhead bench arm
// (a realistic sink: it pays the virtual dispatch and copies every payload,
// but does no I/O). Also handy in unit tests for asserting exactly what the
// engine emitted.
#pragma once

#include <vector>

#include "obs/trace_sink.hpp"

namespace dmsched::obs {

class RecordingSink final : public TraceSink {
 public:
  RunInfo run_info;
  bool begun = false;
  bool ended = false;
  SimTime makespan{};

  std::vector<JobQueued> queued;
  std::vector<JobRejected> rejected;
  std::vector<JobStarted> started;
  std::vector<JobMigrated> migrated;
  std::vector<JobFinished> finished;
  std::vector<PassSpan> passes;
  std::vector<GaugeSample> gauges;

  void on_run_begin(const RunInfo& info) override {
    run_info = info;
    begun = true;
  }
  void on_job_queued(const JobQueued& e) override { queued.push_back(e); }
  void on_job_rejected(const JobRejected& e) override { rejected.push_back(e); }
  void on_job_started(const JobStarted& e) override { started.push_back(e); }
  void on_job_migrated(const JobMigrated& e) override { migrated.push_back(e); }
  void on_job_finished(const JobFinished& e) override { finished.push_back(e); }
  void on_pass(const PassSpan& e) override { passes.push_back(e); }
  void on_gauges(const GaugeSample& e) override { gauges.push_back(e); }
  void on_run_end(SimTime makespan_at) override {
    makespan = makespan_at;
    ended = true;
  }

  /// Drop all recorded events (keeps capacity — reuse across runs).
  void clear() {
    begun = ended = false;
    makespan = SimTime{};
    queued.clear();
    rejected.clear();
    started.clear();
    migrated.clear();
    finished.clear();
    passes.clear();
    gauges.clear();
  }
};

}  // namespace dmsched::obs
