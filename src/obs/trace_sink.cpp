#include "obs/trace_sink.hpp"

namespace dmsched::obs {

const char* to_string(TraceDetail detail) {
  switch (detail) {
    case TraceDetail::kLifecycle:
      return "lifecycle";
    case TraceDetail::kSched:
      return "sched";
    case TraceDetail::kFull:
      return "full";
  }
  return "?";
}

std::optional<TraceDetail> trace_detail_from_string(std::string_view s) {
  if (s == "lifecycle") return TraceDetail::kLifecycle;
  if (s == "sched") return TraceDetail::kSched;
  if (s == "full") return TraceDetail::kFull;
  return std::nullopt;
}

}  // namespace dmsched::obs
