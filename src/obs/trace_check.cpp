#include "obs/trace_check.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>
#include <vector>

#include "common/str.hpp"

namespace dmsched::obs {
namespace {

// A small owned JSON value — one *event object* at a time, never the whole
// document, so validation memory stays bounded by the largest single event.
struct Json {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;

  [[nodiscard]] const Json* find(std::string_view key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }

  bool expect(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    fail(strformat("expected '%c'", c));
    return false;
  }

  [[nodiscard]] bool peek_is(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool parse_value(Json& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out.kind = Json::kString;
        return parse_string(out.str);
      case 't':
        out.kind = Json::kBool;
        out.boolean = true;
        return parse_literal("true");
      case 'f':
        out.kind = Json::kBool;
        out.boolean = false;
        return parse_literal("false");
      case 'n':
        out.kind = Json::kNull;
        return parse_literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("dangling escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out += e;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad hex digit in \\u escape");
          }
          // Decoded text is only compared for equality; encode BMP code
          // points as UTF-8 (surrogate pairs kept as-is two units).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] bool failed() const { return !error_.empty(); }

  bool fail(std::string msg) {
    if (error_.empty())
      error_ = strformat("JSON error at byte %zu: %s", pos_, msg.c_str());
    return false;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool parse_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return fail("bad literal");
    pos_ += lit.size();
    return true;
  }

  bool parse_number(Json& out) {
    std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    bool any = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
      any = true;
    }
    if (!any) return fail("expected a value");
    std::string slice(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(slice.c_str(), &end);
    if (end != slice.c_str() + slice.size()) return fail("malformed number");
    out.kind = Json::kNumber;
    return true;
  }

  bool parse_object(Json& out) {
    out.kind = Json::kObject;
    if (!expect('{')) return false;
    if (peek_is('}')) return expect('}');
    while (true) {
      std::string key;
      if (!parse_string(key)) return false;
      if (!expect(':')) return false;
      Json value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      if (peek_is(',')) {
        if (!expect(',')) return false;
        continue;
      }
      return expect('}');
    }
  }

  bool parse_array(Json& out) {
    out.kind = Json::kArray;
    if (!expect('[')) return false;
    if (peek_is(']')) return expect(']');
    while (true) {
      Json value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      if (peek_is(',')) {
        if (!expect(',')) return false;
        continue;
      }
      return expect(']');
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

/// Cross-event state threaded through the per-event checks.
struct Validator {
  TraceCheckResult result;

  using Track = std::pair<double, double>;  // (pid, tid)
  std::map<Track, std::vector<std::string>> stacks;  // open "B" names
  std::map<Track, double> last_ts;
  // open async spans keyed (pid, cat, id); count allows overlapping spans
  // sharing a key only if ids collide — our emitter never reuses an id.
  std::map<std::tuple<double, std::string, std::string>, std::size_t> open;

  bool fail(std::size_t index, const std::string& msg) {
    if (result.error.empty())
      result.error = strformat("event %zu: %s", index, msg.c_str());
    return false;
  }

  static bool number_field(const Json& ev, const char* key, double& out) {
    const Json* v = ev.find(key);
    if (v == nullptr || v->kind != Json::kNumber) return false;
    out = v->number;
    return true;
  }

  static std::string id_of(const Json& ev) {
    const Json* v = ev.find("id");
    if (v == nullptr) return {};
    if (v->kind == Json::kString) return v->str;
    if (v->kind == Json::kNumber) return strformat("#%.17g", v->number);
    return {};
  }

  bool check_event(const Json& ev, std::size_t index) {
    if (ev.kind != Json::kObject)
      return fail(index, "traceEvents element is not an object");
    const Json* ph = ev.find("ph");
    if (ph == nullptr || ph->kind != Json::kString || ph->str.size() != 1)
      return fail(index, "missing or malformed \"ph\"");
    char phase = ph->str[0];
    ++result.events;

    double pid = 0.0;
    double tid = 0.0;
    if (!number_field(ev, "pid", pid) || !number_field(ev, "tid", tid))
      return fail(index, "missing numeric pid/tid");

    if (phase == 'M') {
      ++result.metadata;
      return true;  // metadata carries no timestamp
    }

    double ts = 0.0;
    if (!number_field(ev, "ts", ts))
      return fail(index, "missing numeric ts");
    if (!std::isfinite(ts) || ts < 0.0)
      return fail(index, "ts is not a finite non-negative number");

    Track track{pid, tid};
    auto [it, fresh] = last_ts.emplace(track, ts);
    if (!fresh) {
      if (ts < it->second)
        return fail(index,
                    strformat("ts %.17g decreases on track (pid %g, tid %g); "
                              "previous %.17g",
                              ts, pid, tid, it->second));
      it->second = ts;
    }

    const Json* name = ev.find("name");
    const bool has_name = name != nullptr && name->kind == Json::kString;

    switch (phase) {
      case 'B': {
        if (!has_name) return fail(index, "\"B\" event without a name");
        stacks[track].push_back(name->str);
        ++result.duration_begin;
        return true;
      }
      case 'E': {
        auto& stack = stacks[track];
        if (stack.empty())
          return fail(index, "\"E\" event with no open \"B\" on its track");
        stack.pop_back();
        ++result.duration_end;
        return true;
      }
      case 'b':
      case 'e': {
        const Json* cat = ev.find("cat");
        if (cat == nullptr || cat->kind != Json::kString)
          return fail(index, "async event without a string \"cat\"");
        std::string id = id_of(ev);
        if (id.empty()) return fail(index, "async event without an \"id\"");
        auto key = std::make_tuple(pid, cat->str, std::move(id));
        if (phase == 'b') {
          ++open[key];
          ++result.async_begin;
        } else {
          auto oit = open.find(key);
          if (oit == open.end() || oit->second == 0)
            return fail(index, "\"e\" event without a matching open \"b\"");
          if (--oit->second == 0) open.erase(oit);
          ++result.async_end;
        }
        return true;
      }
      case 'X': {
        double dur = 0.0;
        if (!number_field(ev, "dur", dur) || dur < 0.0)
          return fail(index, "\"X\" event without a non-negative \"dur\"");
        ++result.complete;
        return true;
      }
      case 'C': {
        const Json* args = ev.find("args");
        bool any_series = false;
        if (args != nullptr && args->kind == Json::kObject)
          for (const auto& [k, v] : args->object)
            if (v.kind == Json::kNumber) any_series = true;
        if (!any_series)
          return fail(index, "\"C\" event without a numeric series in args");
        ++result.counter;
        return true;
      }
      case 'i':
      case 'I': {
        ++result.instant;
        return true;
      }
      default:
        // Unknown phases are tolerated (the format grows), but still obey
        // the track-monotonicity rule applied above.
        return true;
    }
  }

  bool finish() {
    for (const auto& [track, stack] : stacks)
      if (!stack.empty())
        return fail(result.events,
                    strformat("%zu \"B\" event(s) never closed on track "
                              "(pid %g, tid %g); first open: \"%s\"",
                              stack.size(), track.first, track.second,
                              stack.front().c_str()));
    if (!open.empty()) {
      const auto& [pid, cat, id] = open.begin()->first;
      return fail(result.events,
                  strformat("unclosed async span (pid %g, cat \"%s\", id %s)",
                            pid, cat.c_str(), id.c_str()));
    }
    result.ok = true;
    return true;
  }
};

}  // namespace

TraceCheckResult check_trace_json(std::string_view json) {
  Parser parser(json);
  Validator validator;
  auto bail = [&](const std::string& msg) {
    validator.result.ok = false;
    if (validator.result.error.empty()) validator.result.error = msg;
    return validator.result;
  };

  if (!parser.expect('{')) return bail(parser.error());
  bool saw_events = false;
  if (!parser.peek_is('}')) {
    while (true) {
      std::string key;
      if (!parser.parse_string(key)) return bail(parser.error());
      if (!parser.expect(':')) return bail(parser.error());
      if (key == "traceEvents") {
        if (saw_events) return bail("duplicate \"traceEvents\" key");
        saw_events = true;
        if (!parser.expect('[')) return bail(parser.error());
        if (!parser.peek_is(']')) {
          std::size_t index = 0;
          while (true) {
            Json event;
            if (!parser.parse_value(event)) return bail(parser.error());
            if (!validator.check_event(event, index++))
              return validator.result;
            if (parser.peek_is(',')) {
              if (!parser.expect(',')) return bail(parser.error());
              continue;
            }
            break;
          }
        }
        if (!parser.expect(']')) return bail(parser.error());
      } else {
        Json discard;
        if (!parser.parse_value(discard)) return bail(parser.error());
      }
      if (parser.peek_is(',')) {
        if (!parser.expect(',')) return bail(parser.error());
        continue;
      }
      break;
    }
  }
  if (!parser.expect('}')) return bail(parser.error());
  if (!parser.at_end()) return bail("trailing bytes after the root object");
  if (!saw_events) return bail("no \"traceEvents\" array");
  validator.finish();
  return validator.result;
}

TraceCheckResult check_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    TraceCheckResult r;
    r.error = strformat("cannot open %s", path.c_str());
    return r;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string doc = std::move(text).str();
  return check_trace_json(doc);
}

}  // namespace dmsched::obs
