// Passive run telemetry: the observer interface the engine emits into.
//
// Observability in dmsched is *passive by contract*: an attached TraceSink
// receives copies of state the engine already computed — it injects no
// events, perturbs no decision, and a run with any sink attached produces
// RunMetrics byte-identical to the same run without one
// (tests/golden/trace_passivity_test.cpp enforces this across every pinned
// scenario). The null sink is a literal nullptr in EngineOptions: every
// emission site is guarded by one pointer test, so the disabled path costs
// no virtual call and no argument marshalling.
//
// Two time domains share the trace:
//  - simulated time (SimTime, µs since the trace epoch): job lifecycle
//    spans and scheduler pass spans;
//  - wall-clock time (nanoseconds): pass durations and executor worker
//    profiles. Wall values are nondeterministic and exist only inside
//    sinks — nothing wall-clock ever reaches RunMetrics or a golden table.
//
// Sinks must not throw: the engine treats a throwing observer as a
// programming error and aborts deterministically ("trace sink threw
// mid-run") rather than unwinding a half-mutated simulation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/time.hpp"

namespace dmsched::obs {

/// How much an attached sink is fed. Each level includes the previous.
enum class TraceDetail : std::uint8_t {
  kLifecycle = 0,  ///< job lifecycle spans (queued / run / rejected)
  kSched = 1,      ///< + one span per scheduler pass
  kFull = 2,       ///< + gauge samples (queue depth, pools, event queue)
};

[[nodiscard]] const char* to_string(TraceDetail detail);
/// Parse "lifecycle" | "sched" | "full"; nullopt on anything else.
[[nodiscard]] std::optional<TraceDetail> trace_detail_from_string(
    std::string_view s);

/// Static facts about the run, delivered once before the first event.
struct RunInfo {
  std::string label;         ///< "scheduler/machine" (RunMetrics::label)
  std::string cluster_name;  ///< machine name (may contain arbitrary bytes)
  std::int32_t racks = 0;
  std::int32_t total_nodes = 0;
  TraceDetail detail = TraceDetail::kFull;
};

/// A job entered the wait queue (its queued span opens at `submit`).
struct JobQueued {
  std::uint32_t job = 0;
  SimTime submit{};
  std::int32_t nodes = 0;
  double mem_per_node_gib = 0.0;
};

/// A job was rejected at submission (can never fit the machine).
struct JobRejected {
  std::uint32_t job = 0;
  SimTime at{};
};

/// A job started: its queued span closes and its run span opens on the
/// home rack's track.
struct JobStarted {
  std::uint32_t job = 0;
  SimTime submit{};  ///< when the queued span opened
  SimTime start{};
  std::int32_t rack = 0;  ///< home rack: rack of the first allocated node
  std::int32_t nodes = 0;
  double dilation = 1.0;
  double far_rack_gib = 0.0;
  double far_neighbor_gib = 0.0;
  double far_global_gib = 0.0;
};

/// A running job's pooled bytes moved between tiers (migration/) and its
/// slowdown was re-priced. Emitted on the job's home-rack track.
struct JobMigrated {
  std::uint32_t job = 0;
  SimTime at{};
  std::int32_t rack = 0;  ///< source pool (demote) or target pool (promote)
  bool demote = false;    ///< rack → global when true, global → rack else
  double gib = 0.0;
  double dilation_before = 1.0;
  double dilation_after = 1.0;
};

/// A job finished (its run span closes).
struct JobFinished {
  std::uint32_t job = 0;
  SimTime start{};
  SimTime end{};
  std::int32_t rack = 0;
  bool killed = false;
};

/// One scheduler pass, annotated with what it did. `examined` and `plans`
/// come from the policy's own SchedulerStats (sched/scheduler.hpp) and are
/// -1 when the policy does not maintain them.
struct PassSpan {
  std::uint64_t seq = 0;  ///< pass index within the run (0-based)
  SimTime at{};           ///< simulated time of the pass
  const char* kind = "";  ///< policy name ("easy", "conservative", ...)
  std::size_t queue_depth = 0;  ///< waiting jobs before the pass
  std::size_t running = 0;      ///< running jobs before the pass
  std::size_t started = 0;      ///< jobs this pass started
  std::int64_t examined = -1;   ///< queue candidates judged (-1 unknown)
  std::int64_t plans = -1;      ///< plan_start attempts (-1 unknown)
  bool fast_path = false;       ///< served from the incremental cache
  /// Wall-clock pass duration. Only measured at TraceDetail::kFull (the
  /// profiling level) — clock reads are the largest fixed per-pass cost, so
  /// kSched spans carry 0 here and stay within the tracing-overhead budget.
  std::int64_t wall_ns = 0;
};

/// System gauges sampled after a scheduler pass (TraceDetail::kFull).
/// Event-queue figures read the same stable accessors
/// (SchedulingSimulation::pending_events / live_event_id_window) that
/// bench/sim_throughput's bounded-memory criterion uses.
struct GaugeSample {
  SimTime at{};
  std::int32_t busy_nodes = 0;
  std::size_t queue_depth = 0;
  std::size_t running = 0;
  std::size_t event_queue_size = 0;
  std::size_t event_id_window = 0;
  double rack_pool_gib = 0.0;
  double global_pool_gib = 0.0;
};

/// The observer interface. Default implementations ignore everything, so a
/// sink overrides only what it consumes. Callbacks arrive in nondecreasing
/// simulated time, single-threaded, between on_run_begin and on_run_end.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void on_run_begin(const RunInfo& info) { (void)info; }
  virtual void on_job_queued(const JobQueued& e) { (void)e; }
  virtual void on_job_rejected(const JobRejected& e) { (void)e; }
  virtual void on_job_started(const JobStarted& e) { (void)e; }
  virtual void on_job_migrated(const JobMigrated& e) { (void)e; }
  virtual void on_job_finished(const JobFinished& e) { (void)e; }
  virtual void on_pass(const PassSpan& e) { (void)e; }
  virtual void on_gauges(const GaugeSample& e) { (void)e; }
  virtual void on_run_end(SimTime makespan) { (void)makespan; }
};

}  // namespace dmsched::obs
