#include "obs/perfetto.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace dmsched::obs {
namespace {

constexpr std::size_t kFlushThreshold = 1 << 20;  // 1 MiB

void append_format(std::string& buf, const char* fmt, ...)
    [[gnu::format(printf, 2, 3)]];

void append_format(std::string& buf, const char* fmt, ...) {
  char local[512];
  va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(local, sizeof local, fmt, args);
  va_end(args);
  if (n > 0)
    buf.append(local, std::min<std::size_t>(static_cast<std::size_t>(n),
                                            sizeof local - 1));
}

}  // namespace

std::string PerfettoTraceWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char u[8];
          std::snprintf(u, sizeof u, "\\u%04x", c);
          out += u;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

PerfettoTraceWriter::PerfettoTraceWriter(const std::string& path)
    : out_(path, std::ios::binary) {
  buf_.reserve(kFlushThreshold + 4096);
  if (!out_.good()) {
    failed_ = true;
    return;
  }
  raw("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
}

PerfettoTraceWriter::~PerfettoTraceWriter() { close(); }

void PerfettoTraceWriter::raw(std::string_view text) {
  buf_.append(text);
  flush_if_full();
}

void PerfettoTraceWriter::flush_if_full() {
  if (buf_.size() >= kFlushThreshold) {
    out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    buf_.clear();
  }
}

void PerfettoTraceWriter::event_prelude() {
  buf_ += events_ == 0 ? "\n" : ",\n";
  ++events_;
}

void PerfettoTraceWriter::metadata(int pid, int tid, const char* what,
                                   std::string_view name) {
  event_prelude();
  append_format(buf_,
                "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\","
                "\"args\":{\"name\":\"",
                pid, tid, what);
  buf_ += escape(name);
  buf_ += "\"}}";
  flush_if_full();
}

void PerfettoTraceWriter::on_run_begin(const RunInfo& info) {
  queue_tid_ = info.racks;
  metadata(kJobsPid, 0, "process_name",
           "sim: jobs — " + info.label + " on " + info.cluster_name);
  metadata(kJobsPid, queue_tid_, "thread_name", "queued");
  for (std::int32_t r = 0; r < info.racks; ++r)
    metadata(kJobsPid, r, "thread_name", "rack " + std::to_string(r));
  metadata(kSchedPid, 0, "process_name", "sim: scheduler");
  metadata(kSchedPid, 0, "thread_name", "passes");
}

void PerfettoTraceWriter::on_job_queued(const JobQueued& e) {
  event_prelude();
  append_format(buf_,
                "{\"ph\":\"b\",\"cat\":\"queued\",\"id\":%" PRIu32
                ",\"pid\":%d,\"tid\":%" PRId32 ",\"ts\":%" PRId64
                ",\"name\":\"job %" PRIu32
                "\",\"args\":{\"nodes\":%" PRId32 ",\"mem_per_node_gib\":%g}}",
                e.job, kJobsPid, queue_tid_, e.submit.usec(), e.job, e.nodes,
                e.mem_per_node_gib);
  flush_if_full();
}

void PerfettoTraceWriter::on_job_rejected(const JobRejected& e) {
  event_prelude();
  append_format(buf_,
                "{\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%" PRId32
                ",\"ts\":%" PRId64 ",\"name\":\"rejected job %" PRIu32 "\"}",
                kJobsPid, queue_tid_, e.at.usec(), e.job);
  flush_if_full();
}

void PerfettoTraceWriter::on_job_started(const JobStarted& e) {
  // Close the queued span...
  event_prelude();
  append_format(buf_,
                "{\"ph\":\"e\",\"cat\":\"queued\",\"id\":%" PRIu32
                ",\"pid\":%d,\"tid\":%" PRId32 ",\"ts\":%" PRId64
                ",\"name\":\"job %" PRIu32 "\"}",
                e.job, kJobsPid, queue_tid_, e.start.usec(), e.job);
  // ...and open the run span on the home rack's track.
  event_prelude();
  append_format(buf_,
                "{\"ph\":\"b\",\"cat\":\"job\",\"id\":%" PRIu32
                ",\"pid\":%d,\"tid\":%" PRId32 ",\"ts\":%" PRId64
                ",\"name\":\"job %" PRIu32 "\",\"args\":{\"nodes\":%" PRId32
                ",\"dilation\":%g,\"far_rack_gib\":%g,\"far_neighbor_gib\":%g"
                ",\"far_global_gib\":%g}}",
                e.job, kJobsPid, e.rack, e.start.usec(), e.job, e.nodes,
                e.dilation, e.far_rack_gib, e.far_neighbor_gib,
                e.far_global_gib);
  flush_if_full();
}

void PerfettoTraceWriter::on_job_migrated(const JobMigrated& e) {
  // An instant on the rack track at the move's end of the transfer — the
  // run span itself stays open (the job keeps running, re-priced).
  event_prelude();
  append_format(buf_,
                "{\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%" PRId32
                ",\"ts\":%" PRId64 ",\"name\":\"%s job %" PRIu32
                "\",\"args\":{\"gib\":%g,\"dilation_before\":%g"
                ",\"dilation_after\":%g}}",
                kJobsPid, e.rack, e.at.usec(),
                e.demote ? "demote" : "promote", e.job, e.gib,
                e.dilation_before, e.dilation_after);
  flush_if_full();
}

void PerfettoTraceWriter::on_job_finished(const JobFinished& e) {
  event_prelude();
  append_format(buf_,
                "{\"ph\":\"e\",\"cat\":\"job\",\"id\":%" PRIu32
                ",\"pid\":%d,\"tid\":%" PRId32 ",\"ts\":%" PRId64
                ",\"name\":\"job %" PRIu32 "\",\"args\":{\"killed\":%s}}",
                e.job, kJobsPid, e.rack, e.end.usec(), e.job,
                e.killed ? "true" : "false");
  flush_if_full();
}

void PerfettoTraceWriter::on_pass(const PassSpan& e) {
  event_prelude();
  append_format(buf_,
                "{\"ph\":\"X\",\"pid\":%d,\"tid\":0,\"ts\":%" PRId64
                ",\"dur\":0,\"name\":\"",
                kSchedPid, e.at.usec());
  buf_ += escape(e.kind);
  append_format(buf_,
                "\",\"args\":{\"seq\":%" PRIu64 ",\"queue_depth\":%zu"
                ",\"running\":%zu,\"started\":%zu,\"examined\":%" PRId64
                ",\"plans\":%" PRId64 ",\"fast_path\":%s,\"wall_us\":%.3f}}",
                e.seq, e.queue_depth, e.running, e.started, e.examined,
                e.plans, e.fast_path ? "true" : "false",
                static_cast<double>(e.wall_ns) / 1000.0);
  flush_if_full();
}

void PerfettoTraceWriter::on_gauges(const GaugeSample& e) {
  const std::int64_t ts = e.at.usec();
  event_prelude();
  append_format(buf_,
                "{\"ph\":\"C\",\"pid\":%d,\"tid\":0,\"ts\":%" PRId64
                ",\"name\":\"jobs\",\"args\":{\"queued\":%zu,\"running\":%zu}}",
                kSchedPid, ts, e.queue_depth, e.running);
  event_prelude();
  append_format(buf_,
                "{\"ph\":\"C\",\"pid\":%d,\"tid\":0,\"ts\":%" PRId64
                ",\"name\":\"pool_gib\",\"args\":{\"rack\":%g,\"global\":%g}}",
                kSchedPid, ts, e.rack_pool_gib, e.global_pool_gib);
  event_prelude();
  append_format(buf_,
                "{\"ph\":\"C\",\"pid\":%d,\"tid\":0,\"ts\":%" PRId64
                ",\"name\":\"event_queue\",\"args\":{\"events\":%zu"
                ",\"id_window\":%zu}}",
                kSchedPid, ts, e.event_queue_size, e.event_id_window);
  event_prelude();
  append_format(buf_,
                "{\"ph\":\"C\",\"pid\":%d,\"tid\":0,\"ts\":%" PRId64
                ",\"name\":\"busy_nodes\",\"args\":{\"nodes\":%" PRId32 "}}",
                kSchedPid, ts, e.busy_nodes);
  flush_if_full();
}

void PerfettoTraceWriter::on_run_end(SimTime makespan) {
  event_prelude();
  append_format(buf_,
                "{\"ph\":\"i\",\"s\":\"g\",\"pid\":%d,\"tid\":0,\"ts\":%" PRId64
                ",\"name\":\"run end\"}",
                kSchedPid, makespan.usec());
  flush_if_full();
}

void PerfettoTraceWriter::add_worker_profiles(
    const std::vector<WorkerProfile>& workers, std::uint64_t inline_runs) {
  metadata(kExecPid, 0, "process_name", "wall: executor (cumulative)");
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const WorkerProfile& w = workers[i];
    const int tid = static_cast<int>(i);
    metadata(kExecPid, tid, "thread_name", "worker " + std::to_string(i));
    // One span per worker whose *length* is its total idle wait — a visual
    // cumulative profile, not a timeline (these are wall-clock totals).
    event_prelude();
    append_format(buf_,
                  "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":0,"
                  "\"dur\":%.3f,\"name\":\"idle wait\","
                  "\"args\":{\"tasks_run\":%" PRIu64 ",\"tasks_stolen\":%" PRIu64
                  ",\"wait_ms\":%.3f,\"inline_runs\":%" PRIu64 "}}",
                  kExecPid, tid,
                  static_cast<double>(w.wait_ns) / 1000.0, w.tasks_run,
                  w.tasks_stolen, static_cast<double>(w.wait_ns) / 1e6,
                  inline_runs);
    flush_if_full();
  }
}

void PerfettoTraceWriter::close() {
  if (closed_) return;
  closed_ = true;
  if (failed_) return;
  buf_ += "\n]}\n";
  out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  buf_.clear();
  out_.flush();
  if (!out_.good()) failed_ = true;
  out_.close();
}

}  // namespace dmsched::obs
