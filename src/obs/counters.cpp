#include "obs/counters.hpp"

#include "common/csv.hpp"

namespace dmsched::obs {

Counter& CounterRegistry::counter(std::string_view name) {
  auto it = counter_index_.find(std::string(name));
  if (it != counter_index_.end()) return counters_[it->second].second;
  counters_.emplace_back(std::string(name), Counter{});
  counter_index_.emplace(std::string(name), counters_.size() - 1);
  return counters_.back().second;
}

Gauge& CounterRegistry::gauge(std::string_view name) {
  auto it = gauge_index_.find(std::string(name));
  if (it != gauge_index_.end()) return gauges_[it->second].second;
  gauges_.emplace_back(std::string(name), Gauge{});
  gauge_index_.emplace(std::string(name), gauges_.size() - 1);
  return gauges_.back().second;
}

const Counter* CounterRegistry::find_counter(std::string_view name) const {
  auto it = counter_index_.find(std::string(name));
  return it == counter_index_.end() ? nullptr : &counters_[it->second].second;
}

const Gauge* CounterRegistry::find_gauge(std::string_view name) const {
  auto it = gauge_index_.find(std::string(name));
  return it == gauge_index_.end() ? nullptr : &gauges_[it->second].second;
}

std::vector<std::string> CounterRegistry::counter_names() const {
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, c] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> CounterRegistry::gauge_names() const {
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) names.push_back(name);
  return names;
}

bool CounterRegistry::write_csv(const std::string& path) const {
  CsvWriter csv(path);
  if (!csv.ok()) return false;
  csv.header({"kind", "name", "value", "min", "max", "samples"});
  for (const auto& [name, c] : counters_) {
    csv.add("counter")
        .add(name)
        .add(static_cast<std::int64_t>(c.value))
        .add("")
        .add("")
        .add("");
    csv.end_row();
  }
  for (const auto& [name, g] : gauges_) {
    csv.add("gauge").add(name);
    if (g.samples == 0) {
      csv.add("").add("").add("");
    } else {
      csv.add(g.last).add(g.min).add(g.max);
    }
    csv.add(static_cast<std::int64_t>(g.samples));
    csv.end_row();
  }
  return csv.ok();
}

}  // namespace dmsched::obs
