// Parse-back validation for Chrome/Perfetto trace-event JSON.
//
// A traced run is only useful if the artifact actually loads, so CI and the
// emitter tests re-parse what PerfettoTraceWriter wrote and enforce the
// structural rules the viewers rely on:
//
//  - well-formed JSON with a top-level "traceEvents" array of objects;
//  - every event has a string "ph"; non-metadata events have numeric
//    pid/tid/ts (ts finite and non-negative);
//  - "B"/"E" duration events stack-match per (pid, tid);
//  - "b"/"e" async events pair up per (pid, cat, id) — overlap allowed;
//  - per-(pid, tid) timestamps are nondecreasing (emission order is the
//    engine's event order, which is nondecreasing simulated time);
//  - "X" events carry a non-negative "dur"; "C" events carry at least one
//    numeric series in "args".
//
// Events are parsed, checked, and discarded one at a time — memory beyond
// the raw document text is bounded by the largest single event.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace dmsched::obs {

struct TraceCheckResult {
  bool ok = false;
  std::string error;  ///< empty when ok; first violation otherwise

  std::size_t events = 0;  ///< total events seen (including metadata)
  std::size_t duration_begin = 0;  ///< "B"
  std::size_t duration_end = 0;    ///< "E"
  std::size_t async_begin = 0;     ///< "b"
  std::size_t async_end = 0;       ///< "e"
  std::size_t complete = 0;        ///< "X"
  std::size_t counter = 0;         ///< "C"
  std::size_t instant = 0;         ///< "i"/"I"
  std::size_t metadata = 0;        ///< "M"
};

/// Validate an in-memory JSON document.
[[nodiscard]] TraceCheckResult check_trace_json(std::string_view json);

/// Validate a file on disk (streams; the whole file is not buffered).
[[nodiscard]] TraceCheckResult check_trace_file(const std::string& path);

}  // namespace dmsched::obs
