// Named counters and gauges, dumped to CSV at end of run.
//
// A CounterRegistry is the scalar complement to the TraceSink span stream:
// where the sink sees every event, the registry holds end-of-run totals
// (counters) and min/last/max envelopes (gauges). Like sinks, a registry is
// passive — the engine writes into it but never reads from it, and every
// value it records is deterministic (no wall-clock quantities), so a
// counters CSV is as reproducible as a golden table.
//
// Entries are created on first use and iterate in registration order, so
// dumps are stable across runs. References returned by counter()/gauge()
// stay valid for the registry's lifetime (deque-backed storage).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dmsched::obs {

/// A monotonically growing total.
struct Counter {
  std::uint64_t value = 0;

  void add(std::uint64_t n = 1) { value += n; }
};

/// A sampled quantity with a min/last/max envelope.
struct Gauge {
  double last = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::uint64_t samples = 0;

  void set(double v) {
    last = v;
    if (samples == 0 || v < min) min = v;
    if (samples == 0 || v > max) max = v;
    ++samples;
  }
};

/// Get-or-create registry of named Counters and Gauges.
class CounterRegistry {
 public:
  /// The counter named `name`, created at zero on first use.
  Counter& counter(std::string_view name);
  /// The gauge named `name`, created empty on first use.
  Gauge& gauge(std::string_view name);

  /// Lookup without creation; nullptr when absent.
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;

  [[nodiscard]] std::size_t counter_count() const { return counters_.size(); }
  [[nodiscard]] std::size_t gauge_count() const { return gauges_.size(); }

  /// Names in registration order.
  [[nodiscard]] std::vector<std::string> counter_names() const;
  [[nodiscard]] std::vector<std::string> gauge_names() const;

  /// Dump everything as CSV: kind,name,value,min,max,samples. Counters fill
  /// `value` only; gauges fill value (= last), min, max, and samples.
  /// Returns false if the file could not be written.
  bool write_csv(const std::string& path) const;

 private:
  // deque keeps references stable as entries are added; the maps index into
  // the deques. Iteration is always over the deques (registration order) —
  // never over the unordered maps (determinism contract).
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::unordered_map<std::string, std::size_t> counter_index_;
  std::unordered_map<std::string, std::size_t> gauge_index_;
};

}  // namespace dmsched::obs
