// dmsched_sim — the command-line simulator.
//
// One binary exposing the full public API surface: machine shape, workload
// source (synthetic model or SWF file), scheduling policy and all its
// knobs, the slowdown model, and CSV outputs for per-job records and the
// system time series. Everything a study needs without writing C++.
//
//   dmsched-sim --workload capacity --scheduler mem-easy --local-gib 128
//               --pool-gib 2048 --jobs 4000 --csv-jobs out.csv
//   dmsched-sim --swf trace.swf --procs-per-node 16 --scheduler easy
//   dmsched-sim --scenario memory-stressed --scheduler easy --csv-jobs out.csv
//   dmsched-sim --scenario million-replay --stream --lookahead 256
//               --checkpoint-interval-min 120 --csv-windows windows.csv
//   dmsched-sim --list-scenarios
#include <cstdio>
#include <optional>
#include <stdexcept>

#include "cluster/system_config.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/log.hpp"
#include "common/str.hpp"
#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "core/fairness.hpp"
#include "obs/counters.hpp"
#include "obs/perfetto.hpp"
#include "runtime/executor.hpp"
#include "workload/characterize.hpp"
#include "workload/scenarios.hpp"
#include "workload/swf.hpp"
#include "workload/transform.hpp"

namespace {

using namespace dmsched;

void write_jobs_csv(const std::string& path, const RunMetrics& m) {
  CsvWriter csv(path);
  if (!csv.ok()) {
    DMSCHED_LOG_WARN("cannot write %s", path.c_str());
    return;
  }
  csv.header({"job", "user", "fate", "nodes", "mem_per_node_gib",
              "submit_s", "start_s", "end_s", "wait_s", "runtime_s",
              "dilation", "bsld", "far_rack_gib", "far_global_gib",
              "sensitivity"});
  for (const JobOutcome& o : m.jobs) {
    const char* fate = o.fate == JobFate::kCompleted ? "completed"
                       : o.fate == JobFate::kKilled  ? "killed"
                                                     : "rejected";
    csv.add(static_cast<std::size_t>(o.id))
        .add(static_cast<std::int64_t>(o.user))
        .add(fate)
        .add(static_cast<std::int64_t>(o.nodes))
        .add(o.mem_per_node.gib())
        .add(o.submit.seconds());
    if (o.fate == JobFate::kRejected) {
      csv.add("").add("").add("");
    } else {
      csv.add(o.start.seconds()).add(o.end.seconds()).add(o.wait().seconds());
    }
    csv.add(o.runtime.seconds())
        .add(o.dilation)
        .add(o.fate == JobFate::kRejected ? 0.0 : o.bounded_slowdown())
        .add(o.far_rack.gib())
        .add(o.far_global.gib())
        .add(to_string(o.sensitivity));
    csv.end_row();
  }
}

void write_windows_csv(const std::string& path, const RunMetrics& m) {
  CsvWriter csv(path);
  if (!csv.ok()) {
    DMSCHED_LOG_WARN("cannot write %s", path.c_str());
    return;
  }
  csv.header({"start_s", "end_s", "mean_busy_nodes", "mean_queued_jobs",
              "busy_node_seconds", "rack_pool_gib_seconds",
              "global_pool_gib_seconds", "submitted", "started", "finished",
              "rejected", "migrated", "migrated_gib"});
  for (const MetricsWindow& w : m.windows) {
    csv.add(w.start.seconds())
        .add(w.end.seconds())
        .add(w.mean_busy_nodes())
        .add(w.mean_queued_jobs())
        .add(w.busy_node_seconds)
        .add(w.rack_pool_gib_seconds)
        .add(w.global_pool_gib_seconds)
        .add(w.jobs_submitted)
        .add(w.jobs_started)
        .add(w.jobs_finished)
        .add(w.jobs_rejected)
        .add(w.jobs_migrated)
        .add(w.migrated_gib);
    csv.end_row();
  }
}

void write_series_csv(const std::string& path, const RunMetrics& m) {
  CsvWriter csv(path);
  if (!csv.ok()) {
    DMSCHED_LOG_WARN("cannot write %s", path.c_str());
    return;
  }
  csv.header({"time_s", "busy_nodes", "queued", "running",
              "rack_pool_used_gib", "global_pool_used_gib"});
  for (const TimeSample& s : m.series) {
    csv.add(s.time.seconds())
        .add(static_cast<std::int64_t>(s.busy_nodes))
        .add(static_cast<std::int64_t>(s.queued_jobs))
        .add(static_cast<std::int64_t>(s.running_jobs))
        .add(s.rack_pool_used.gib())
        .add(s.global_pool_used.gib());
    csv.end_row();
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmsched;
  Cli cli("dmsched_sim", "simulate a workload on a disaggregated machine");
  // machine
  cli.add_int("nodes", 1024, "total nodes");
  cli.add_int("nodes-per-rack", 64, "nodes per rack");
  cli.add_int("local-gib", 256, "local memory per node (GiB)");
  cli.add_int("pool-gib", 0, "disaggregated pool per rack (GiB)");
  cli.add_int("global-gib", 0, "cluster-global pool (GiB)");
  // workload
  cli.add_string("workload", "mixed",
                 "synthetic model: capability|capacity|mixed");
  cli.add_string("scenario", "",
                 "library scenario (machine + workload; see --list-scenarios; "
                 "non-zero --jobs/--seed/--load override its defaults)");
  cli.add_double("node-scale", 0.0,
                 "with --scenario: machine-scale multiplier on the node "
                 "count, snapped to whole racks (0 = published machine)");
  cli.add_double("pool-scale", 0.0,
                 "with --scenario: multiplier on rack + global pool "
                 "capacity (0 = published machine)");
  cli.add_int("racks", 0,
              "with --scenario: re-rack the machine into exactly this many "
              "racks, preserving rack-tier bytes (0 = published racking)");
  cli.add_double("rack-pool-frac", -1.0,
                 "with --scenario: fraction of total disaggregated capacity "
                 "provisioned as rack pools, rest global (negative = "
                 "published split)");
  cli.add_double("remote-penalty", 0.0,
                 "with --scenario: multiplier on the remote-tier slowdown "
                 "coefficients (0 = published model)");
  cli.add_int("gpus-per-node", 0,
              "with --scenario: override the rack-pooled GPUs provisioned "
              "per node (0 = published machine)");
  cli.add_int("bb-capacity", 0,
              "with --scenario: override the cluster-global burst-buffer "
              "capacity (GiB; 0 = published machine)");
  cli.add_flag("list-scenarios", "list the scenario library and exit");
  cli.add_string("swf", "", "SWF trace file (overrides --workload)");
  cli.add_int("procs-per-node", 1, "SWF processors per node");
  cli.add_int("jobs", 4000, "synthetic job count / SWF job cap");
  cli.add_int("seed", 42, "synthetic workload seed");
  cli.add_double("load", 0.85, "synthetic offered load target");
  cli.add_double("ref-mem-gib", 256.0,
                 "reference node memory for synthetic footprints (GiB)");
  cli.add_flag("exact-walltimes", "rewrite walltime requests to runtimes");
  // scheduler
  cli.add_string("scheduler", "mem-easy",
                 "fcfs|easy|conservative|mem-easy|adaptive|resource-easy");
  cli.add_string("queue-order", "fcfs", "fcfs|sjf|largest|wfp");
  cli.add_string("placement", "",
                 "named placement strategy: local-first|balanced|"
                 "global-fallback|shared-neighbors (preset for "
                 "--selection/--routing, which override it individually)");
  cli.add_string("selection", "pool-aware",
                 "first-fit|pack-racks|spread-racks|pool-aware");
  cli.add_string("routing", "rack-then-global",
                 "rack-only|rack-then-global|rack-neighbor-global|"
                 "global-only");
  cli.add_string("backfill-order", "queue-order",
                 "queue-order|shortest-first|best-mem-fit");
  cli.add_int("reservation-depth", 1, "EASY-K protected reservations");
  cli.add_double("adaptive-margin-sec", 0.0, "defer-vs-dilate hysteresis");
  cli.add_double("reserve-headroom", 0.0,
                 "mem-easy/adaptive: fraction of each pool tier shielded "
                 "from backfills (kept for the reserved queue front; 0 = "
                 "off)");
  // slowdown model
  cli.add_string("slowdown", "linear", "linear|saturating");
  cli.add_double("beta-rack", 0.30, "rack-pool penalty coefficient");
  cli.add_double("beta-neighbor", 0.375,
                 "neighbor-rack-pool penalty coefficient (draws served by a "
                 "rack hosting none of the job's nodes)");
  cli.add_double("beta-global", 0.45, "global-pool penalty coefficient");
  cli.add_double("gamma", 0.7, "saturating-model exponent");
  // engine
  cli.add_flag("kill-on-walltime", "enforce walltime limits");
  cli.add_int("sample-interval-min", 0, "time-series sampling (0 = off)");
  cli.add_int("lookahead", 0,
              "pending-submission look-ahead window: how many un-fired "
              "submission events the engine keeps scheduled ahead of the "
              "clock (0 = unbounded). Any value is byte-identical; small "
              "windows bound event-queue memory for huge replays");
  cli.add_flag("stream",
               "with --scenario: pull the workload through the streaming "
               "source instead of materializing the trace (month-scale "
               "replays at bounded workload memory; combine with "
               "--lookahead)");
  cli.add_int("checkpoint-interval-min", 0,
              "emit windowed metric checkpoints at this interval "
              "(0 = off; see --csv-windows)");
  // migration (all knobs behind the 0-sentinel: off by default)
  cli.add_int("migrate-interval-min", 0,
              "scan running jobs for tier moves at this interval (0 = "
              "migration off)");
  cli.add_double("migrate-demote-frac", 0.85,
                 "rack-pool used fraction above which its draws demote to "
                 "the global tier");
  cli.add_double("migrate-hysteresis", 0.25,
                 "promotion headroom: global bytes promote back only into "
                 "pools below demote-frac minus this");
  cli.add_double("migrate-gibps", 0.0,
                 "migration copy bandwidth in GiB/s (0 = moves apply "
                 "instantly at the scan)");
  // outputs
  cli.add_string("csv-jobs", "", "write per-job outcomes to this CSV");
  cli.add_string("csv-series", "", "write the time series to this CSV");
  cli.add_string("csv-windows", "",
                 "write checkpointed metric windows to this CSV");
  cli.add_flag("fairness", "print the per-user fairness summary");
  cli.add_string("trace-out", "",
                 "write a Chrome/Perfetto trace-event JSON of the run "
                 "(load in ui.perfetto.dev or chrome://tracing)");
  cli.add_string("trace-detail", "full",
                 "trace granularity: lifecycle|sched|full");
  cli.add_string("counters-out", "",
                 "write end-of-run counters and gauge envelopes to this CSV");
  cli.add_string("log-level", "warn",
                 "stderr diagnostics threshold: debug|info|warn|error");
  if (!cli.parse(argc, argv)) return 1;

  if (const std::string level = cli.get_string("log-level");
      level == "debug") {
    set_log_level(LogLevel::kDebug);
  } else if (level == "info") {
    set_log_level(LogLevel::kInfo);
  } else if (level == "warn") {
    set_log_level(LogLevel::kWarn);
  } else if (level == "error") {
    set_log_level(LogLevel::kError);
  } else {
    std::fprintf(stderr,
                 "error: unknown --log-level '%s' (debug|info|warn|error)\n",
                 level.c_str());
    return 1;
  }

  if (cli.get_flag("list-scenarios")) {
    for (const std::string& name : scenario_names()) {
      const ScenarioInfo& info = scenario_info(name);
      // Infrastructure scenarios carry scale-sized defaults (large-replay:
      // 100k jobs); the listing says so instead of letting a casual
      // "run every scenario" loop discover it the slow way.
      std::printf("%-18s %s%s\n", name.c_str(),
                  info.infrastructure ? "[infrastructure] " : "",
                  info.summary.c_str());
      std::printf("%-18s backs %s; expected: %s\n", "", info.paper_figure.c_str(),
                  info.expected_ordering.c_str());
    }
    return 0;
  }

  // A library scenario supplies machine + workload; explicitly provided
  // --jobs/--seed/--load override its defaults (zero keeps the scenario
  // default — ScenarioParams' sentinel), other machine/workload flags are
  // ignored.
  if (cli.get_flag("stream") && cli.get_string("scenario").empty()) {
    std::fprintf(stderr,
                 "error: --stream requires --scenario (only library "
                 "scenarios have streaming workload sources)\n");
    return 1;
  }
  if (cli.get_int("lookahead") < 0) {
    std::fprintf(stderr, "error: --lookahead must be >= 0\n");
    return 1;
  }

  std::optional<Scenario> scenario;
  std::optional<ScenarioStream> stream;
  if (const std::string name = cli.get_string("scenario"); !name.empty()) {
    if (cli.provided("swf")) {
      std::fprintf(stderr,
                   "error: --scenario and --swf are mutually exclusive "
                   "(a scenario brings its own workload)\n");
      return 1;
    }
    if (cli.get_int("jobs") < 0 || cli.get_int("seed") < 0 ||
        cli.get_double("load") < 0.0) {
      std::fprintf(stderr, "error: --jobs/--seed/--load must be >= 0\n");
      return 1;
    }
    ScenarioParams params;
    if (cli.provided("jobs")) {
      params.jobs = static_cast<std::size_t>(cli.get_int("jobs"));
    }
    if (cli.provided("seed")) {
      params.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
      if (params.seed == 0) {
        std::fprintf(stderr,
                     "warning: --seed 0 means the scenario's default seed "
                     "(0 is the \"unset\" sentinel); use another seed for a "
                     "distinct workload\n");
      }
    }
    if (cli.provided("load")) params.load = cli.get_double("load");
    params.node_scale = cli.get_double("node-scale");
    params.pool_scale = cli.get_double("pool-scale");
    params.racks = static_cast<std::int32_t>(cli.get_int("racks"));
    params.rack_pool_frac = cli.get_double("rack-pool-frac");
    params.remote_penalty = cli.get_double("remote-penalty");
    params.gpus_per_node =
        static_cast<std::int32_t>(cli.get_int("gpus-per-node"));
    params.bb_capacity = gib(cli.get_int("bb-capacity"));
    try {
      if (cli.get_flag("stream")) {
        stream = make_scenario_stream(name, params);
      } else {
        scenario = make_scenario(name, params);
      }
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  } else if (cli.provided("node-scale") || cli.provided("pool-scale") ||
             cli.provided("racks") || cli.provided("rack-pool-frac") ||
             cli.provided("remote-penalty") || cli.provided("gpus-per-node") ||
             cli.provided("bb-capacity")) {
    std::fprintf(stderr,
                 "error: --node-scale/--pool-scale/--racks/--rack-pool-frac/"
                 "--remote-penalty/--gpus-per-node/--bb-capacity only apply "
                 "to --scenario machines (size custom machines with "
                 "--nodes/--pool-gib)\n");
    return 1;
  }

  ExperimentConfig config;
  config.cluster = scenario ? scenario->cluster
                   : stream ? stream->cluster
                            : custom_config(
          static_cast<std::int32_t>(cli.get_int("nodes")),
          static_cast<std::int32_t>(cli.get_int("nodes-per-rack")),
          gib(cli.get_int("local-gib")), gib(cli.get_int("pool-gib")),
          gib(cli.get_int("global-gib")));
  config.scheduler = scheduler_kind_from_string(cli.get_string("scheduler"));
  config.mem_options.order = [&] {
    const std::string s = cli.get_string("backfill-order");
    if (s == "shortest-first") return BackfillOrder::kShortestFirst;
    if (s == "best-mem-fit") return BackfillOrder::kBestMemFit;
    return BackfillOrder::kQueueOrder;
  }();
  config.mem_options.reservation_depth =
      static_cast<std::size_t>(cli.get_int("reservation-depth"));
  config.mem_options.adaptive_margin_sec =
      cli.get_double("adaptive-margin-sec");
  config.mem_options.reserve_headroom = cli.get_double("reserve-headroom");
  if (config.mem_options.reserve_headroom < 0.0 ||
      config.mem_options.reserve_headroom >= 1.0) {
    std::fprintf(stderr, "error: --reserve-headroom must lie in [0, 1)\n");
    return 1;
  }
  config.engine.queue_order = [&] {
    const std::string s = cli.get_string("queue-order");
    if (s == "sjf") return QueueOrder::kShortestFirst;
    if (s == "largest") return QueueOrder::kLargestFirst;
    if (s == "wfp") return QueueOrder::kWfp;
    return QueueOrder::kFcfs;
  }();
  // A named strategy presets (selection, routing); the individual flags
  // refine it when explicitly provided.
  if (const std::string name = cli.get_string("placement"); !name.empty()) {
    const auto strategy = placement_strategy_from_string(name);
    if (!strategy) {
      std::fprintf(stderr,
                   "error: unknown placement strategy \"%s\" (known: "
                   "local-first, balanced, global-fallback, "
                   "shared-neighbors)\n",
                   name.c_str());
      return 1;
    }
    config.engine.placement = make_placement(*strategy);
  }
  if (!cli.provided("placement") || cli.provided("selection")) {
    config.engine.placement.selection = [&] {
      const std::string s = cli.get_string("selection");
      if (s == "first-fit") return NodeSelection::kFirstFit;
      if (s == "pack-racks") return NodeSelection::kPackRacks;
      if (s == "spread-racks") return NodeSelection::kSpreadRacks;
      return NodeSelection::kPoolAware;
    }();
  }
  if (!cli.provided("placement") || cli.provided("routing")) {
    config.engine.placement.routing = [&] {
      const std::string s = cli.get_string("routing");
      if (s == "rack-only") return PoolRouting::kRackOnly;
      if (s == "rack-neighbor-global") return PoolRouting::kRackNeighborGlobal;
      if (s == "global-only") return PoolRouting::kGlobalOnly;
      return PoolRouting::kRackThenGlobal;
    }();
  }
  config.engine.slowdown.kind = cli.get_string("slowdown") == "saturating"
                                    ? SlowdownModel::Kind::kSaturating
                                    : SlowdownModel::Kind::kLinear;
  config.engine.slowdown.beta_rack = cli.get_double("beta-rack");
  config.engine.slowdown.beta_neighbor = cli.get_double("beta-neighbor");
  config.engine.slowdown.beta_global = cli.get_double("beta-global");
  config.engine.slowdown.gamma = cli.get_double("gamma");
  if (scenario || stream) {
    config.engine.slowdown = config.engine.slowdown.with_remote_penalty(
        scenario ? scenario->remote_penalty : stream->remote_penalty);
  }
  config.engine.kill_on_walltime = cli.get_flag("kill-on-walltime");
  if (cli.get_int("sample-interval-min") > 0) {
    config.engine.sample_interval = minutes(cli.get_int("sample-interval-min"));
  }
  config.engine.submit_lookahead =
      static_cast<std::size_t>(cli.get_int("lookahead"));
  if (cli.get_int("checkpoint-interval-min") > 0) {
    config.engine.checkpoint_interval =
        minutes(cli.get_int("checkpoint-interval-min"));
  }
  if (cli.get_int("migrate-interval-min") > 0) {
    config.engine.migration.check_interval =
        minutes(cli.get_int("migrate-interval-min"));
    config.engine.migration.demote_threshold =
        cli.get_double("migrate-demote-frac");
    config.engine.migration.promote_headroom =
        cli.get_double("migrate-hysteresis");
    config.engine.migration.bandwidth_gibps = cli.get_double("migrate-gibps");
  }

  Trace trace;
  if (stream) {
    // Streaming mode deliberately never materializes the workload, so the
    // eager-only surfaces (characterize, with_exact_walltimes) are
    // unavailable: the point is O(live) workload memory.
    if (cli.get_flag("exact-walltimes")) {
      std::fprintf(stderr,
                   "error: --exact-walltimes rewrites a materialized trace "
                   "and cannot apply to --stream\n");
      return 1;
    }
    config.workload_reference_mem = stream->workload_reference_mem;
    std::printf("scenario: %s — %s (streaming", stream->info.name.c_str(),
                stream->info.summary.c_str());
    if (const auto hint = stream->source->size_hint(); hint.has_value()) {
      std::printf(", %zu jobs", *hint);
    }
    std::printf(", lookahead %zu)\n", config.engine.submit_lookahead);
  } else if (scenario) {
    trace = scenario->trace;
    config.workload_reference_mem = scenario->workload_reference_mem;
    std::printf("scenario: %s — %s\n", scenario->info.name.c_str(),
                scenario->info.summary.c_str());
  } else if (const std::string swf = cli.get_string("swf"); !swf.empty()) {
    SwfOptions options;
    options.procs_per_node =
        static_cast<std::int32_t>(cli.get_int("procs-per-node"));
    auto result = read_swf_file(swf, options);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n", result.error.c_str());
      return 1;
    }
    std::printf("loaded %zu jobs from %s (%zu skipped, %zu malformed)\n",
                result.jobs_accepted, swf.c_str(), result.jobs_skipped,
                result.lines_malformed);
    trace = result.trace.prefix(static_cast<std::size_t>(cli.get_int("jobs")));
  } else {
    config.model = workload_model_from_string(cli.get_string("workload"));
    config.jobs = static_cast<std::size_t>(cli.get_int("jobs"));
    config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    config.target_load = cli.get_double("load");
    config.workload_reference_mem = gib(cli.get_double("ref-mem-gib"));
    trace = make_workload(config);
  }
  if (!stream && cli.get_flag("exact-walltimes")) {
    trace = with_exact_walltimes(trace);
  }

  if (!stream) {
    const TraceStats stats =
        characterize(trace, config.workload_reference_mem,
                     config.cluster.total_nodes);
    std::printf(
        "workload: %zu jobs, %.1f h span, offered load %.2f, "
        "mem/node p50 %.1f GiB, >local %.1f%%\n",
        stats.job_count, stats.span_hours, stats.offered_load,
        stats.mem_per_node_p50_gib, 100.0 * stats.frac_mem_above_full);
  }
  std::printf("machine : %s (%d nodes, %d racks, %s local, %s pool/rack, "
              "%s global)\n",
              config.cluster.name.c_str(), config.cluster.total_nodes,
              config.cluster.racks(),
              format_bytes(config.cluster.local_mem_per_node).c_str(),
              format_bytes(config.cluster.pool_per_rack).c_str(),
              format_bytes(config.cluster.global_pool).c_str());
  if (config.cluster.has_gpus() || config.cluster.has_burst_buffer()) {
    std::printf("resource: %d GPUs/node (rack-pooled, %lld total), "
                "%s burst buffer\n",
                config.cluster.gpus_per_node,
                static_cast<long long>(config.cluster.total_gpus()),
                format_bytes(config.cluster.bb_capacity).c_str());
  }

  // Passive observability: both attachments leave RunMetrics byte-identical
  // (tests/golden/trace_passivity_test.cpp), so they can ride along on any
  // run without invalidating comparisons against untraced ones.
  const auto detail =
      obs::trace_detail_from_string(cli.get_string("trace-detail"));
  if (!detail) {
    std::fprintf(stderr,
                 "error: unknown --trace-detail '%s' (lifecycle|sched|full)\n",
                 cli.get_string("trace-detail").c_str());
    return 1;
  }
  config.engine.trace_detail = *detail;
  std::optional<obs::PerfettoTraceWriter> trace_writer;
  if (const std::string path = cli.get_string("trace-out"); !path.empty()) {
    trace_writer.emplace(path);
    if (!trace_writer->ok()) {
      std::fprintf(stderr, "error: cannot open %s for the trace\n",
                   path.c_str());
      return 1;
    }
    config.engine.sink = &*trace_writer;
    DMSCHED_LOG_INFO("tracing at detail '%s' into %s",
                     obs::to_string(*detail), path.c_str());
  }
  obs::CounterRegistry registry;
  if (!cli.get_string("counters-out").empty()) {
    config.engine.counters = &registry;
  }

  const RunMetrics m = stream ? run_experiment(config, *stream->source)
                              : run_experiment(config, trace);

  if (trace_writer) {
    // Wall-clock worker profiles only exist when the process actually used
    // the pool (sweeps/benches); a single run just records an idle pool.
    std::vector<obs::WorkerProfile> profiles;
    for (const ExecutorWorkerStats& w : Executor::global().worker_stats()) {
      profiles.push_back({w.tasks_run, w.tasks_stolen, w.wait_ns});
    }
    trace_writer->add_worker_profiles(profiles,
                                      Executor::global().inline_runs());
    trace_writer->close();
    if (!trace_writer->ok()) {
      std::fprintf(stderr, "error: trace write to %s failed\n",
                   cli.get_string("trace-out").c_str());
      return 1;
    }
    DMSCHED_LOG_DEBUG("trace closed after %zu events",
                      trace_writer->events_written());
  }

  std::printf("\n=== %s ===\n", m.label.c_str());
  std::printf("completed %zu, killed %zu, rejected %zu over %.1f h\n",
              m.completed, m.killed, m.rejected, m.makespan.hours());
  std::printf("wait      mean %.2f h, p95 %.2f h, max %.2f h\n",
              m.mean_wait_hours, m.p95_wait_hours, m.max_wait_hours);
  std::printf("bsld      mean %.2f, p95 %.2f\n", m.mean_bsld, m.p95_bsld);
  std::printf("util      nodes %.1f%%, rack pools %.1f%% (peak %.1f%%), "
              "global %.1f%%\n",
              100.0 * m.node_utilization, 100.0 * m.rack_pool_utilization,
              100.0 * m.rack_pool_peak, 100.0 * m.global_pool_utilization);
  if (config.cluster.has_gpus() || config.cluster.has_burst_buffer()) {
    std::printf("resource  GPUs %.1f%% (peak %.1f%%), burst buffer %.1f%% "
                "(peak %.1f%%)\n",
                100.0 * m.gpu_utilization, 100.0 * m.gpu_peak,
                100.0 * m.bb_utilization, 100.0 * m.bb_peak);
  }
  std::printf("far mem   %.1f%% of jobs, mean dilation %.3f, %.0f GiB·h\n",
              100.0 * m.frac_jobs_far, m.mean_dilation, m.far_gib_hours);
  std::printf("topology  remote access %.1f%% of bytes (global %.1f%%), "
              "busiest rack pool peak %.1f%%\n",
              100.0 * m.remote_access_fraction,
              100.0 * m.global_access_fraction,
              100.0 * m.rack_pool_busiest_peak);
  if (m.neighbor_access_fraction > 0.0 || m.demotions + m.promotions > 0) {
    std::printf("migrate   neighbor access %.1f%% of bytes, "
                "%zu demoted (%.0f GiB), %zu promoted (%.0f GiB), %.1f/h\n",
                100.0 * m.neighbor_access_fraction, m.demotions, m.demoted_gib,
                m.promotions, m.promoted_gib, m.migrations_per_hour);
  }
  std::printf("thruput   %.1f jobs/h\n", m.jobs_per_hour);

  if (cli.get_flag("fairness")) {
    const FairnessReport r = fairness_report(m);
    std::printf("fairness  %zu users, Jain(bsld) %.3f, Jain(wait) %.3f, "
                "max/min bsld %.1f, top-decile share %.1f%%\n",
                r.users.size(), r.jain_bsld, r.jain_wait,
                r.max_min_bsld_ratio, 100.0 * r.top_decile_node_share);
  }
  if (const std::string path = cli.get_string("csv-jobs"); !path.empty()) {
    write_jobs_csv(path, m);
    std::printf("wrote per-job outcomes to %s\n", path.c_str());
  }
  if (const std::string path = cli.get_string("csv-series"); !path.empty()) {
    write_series_csv(path, m);
    std::printf("wrote time series to %s\n", path.c_str());
  }
  if (const std::string path = cli.get_string("csv-windows"); !path.empty()) {
    if (m.windows.empty()) {
      std::fprintf(stderr,
                   "warning: --csv-windows without --checkpoint-interval-min "
                   "writes an empty table\n");
    }
    write_windows_csv(path, m);
    std::printf("wrote %zu metric windows to %s\n", m.windows.size(),
                path.c_str());
  }
  if (trace_writer) {
    std::printf("wrote trace (%zu events) to %s\n",
                trace_writer->events_written(),
                cli.get_string("trace-out").c_str());
  }
  if (const std::string path = cli.get_string("counters-out");
      !path.empty()) {
    if (!registry.write_csv(path)) {
      DMSCHED_LOG_WARN("cannot write %s", path.c_str());
    } else {
      std::printf("wrote %zu counters, %zu gauges to %s\n",
                  registry.counter_count(), registry.gauge_count(),
                  path.c_str());
    }
  }
  return 0;
}
