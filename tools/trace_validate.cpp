// dmsched-trace-validate: parse-back checker for trace-event JSON.
//
// CI runs this over the trace a `dmsched-sim --trace-out` replay produced
// before uploading it as an artifact, so a malformed trace fails the build
// instead of failing silently in a viewer weeks later. Exit 0 iff every
// argument validates.
#include <cstdio>
#include <string>

#include "obs/trace_check.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: dmsched-trace-validate TRACE.json...\n");
    return 2;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    const dmsched::obs::TraceCheckResult r =
        dmsched::obs::check_trace_file(path);
    if (!r.ok) {
      std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(),
                   r.error.c_str());
      all_ok = false;
      continue;
    }
    std::printf(
        "%s: ok — %zu events (async %zu/%zu, complete %zu, counter %zu, "
        "instant %zu, metadata %zu)\n",
        path.c_str(), r.events, r.async_begin, r.async_end, r.complete,
        r.counter, r.instant, r.metadata);
  }
  return all_ok ? 0 : 1;
}
